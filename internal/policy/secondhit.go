package policy

import (
	"lfo/internal/trace"
)

// secondHitDefaultIDs bounds the censor's seen-set when the caller passes
// 0 to NewSecondHitCensor.
const secondHitDefaultIDs = 1 << 20

// SecondHitCensor is the classic frequency heuristic from production CDNs
// (admit an object only on its second request within recent history),
// used here as the degraded-mode admission policy when the learned remote
// path is unavailable: it filters one-hit wonders at near-zero cost and
// needs no model.
//
// Memory is bounded with two generations of seen-IDs: when the current
// generation fills up, it becomes the previous generation and the oldest
// one is discarded, so the censor remembers between maxIDs and 2×maxIDs
// distinct objects and forgetting is abrupt only at generation granularity.
//
// It implements the tiered.Admitter shape (Admit + Observe) structurally,
// without importing that package.
type SecondHitCensor struct {
	maxIDs int
	cur    map[trace.ObjectID]struct{}
	prev   map[trace.ObjectID]struct{}
}

// NewSecondHitCensor returns a censor remembering roughly maxIDs distinct
// object IDs per generation. 0 means the package default (1M IDs per
// generation); a negative value disables rotation (unbounded memory).
func NewSecondHitCensor(maxIDs int) *SecondHitCensor {
	if maxIDs == 0 {
		maxIDs = secondHitDefaultIDs
	}
	return &SecondHitCensor{
		maxIDs: maxIDs,
		cur:    make(map[trace.ObjectID]struct{}),
		prev:   make(map[trace.ObjectID]struct{}),
	}
}

// seen reports whether the object appears in either generation.
func (p *SecondHitCensor) seen(id trace.ObjectID) bool {
	if _, ok := p.cur[id]; ok {
		return true
	}
	_, ok := p.prev[id]
	return ok
}

// Admit admits objects that were requested before within the censor's
// memory, with likelihood 1 (0 otherwise). freeBytes is ignored.
func (p *SecondHitCensor) Admit(r trace.Request, freeBytes int64) (bool, float64) {
	if p.seen(r.ID) {
		return true, 1
	}
	return false, 0
}

// Observe records the request in the current generation, rotating
// generations when the bound is reached.
//
// The insert lands before the rotation check: rotating first would let a
// single brand-new ID arriving at a full generation discard the previous
// generation immediately and then seed a near-empty current one, so a
// burst of one-hit wonders could flush the admission history the moment
// it started. Inserting first means a rotation only happens once a full
// generation of maxIDs distinct IDs has accumulated — the triggering ID
// is retained with the generation it arrived in, and the remembered set
// provably stays between maxIDs and 2×maxIDs distinct objects.
func (p *SecondHitCensor) Observe(r trace.Request) {
	p.cur[r.ID] = struct{}{}
	if p.maxIDs > 0 && len(p.cur) >= p.maxIDs {
		p.prev = p.cur
		p.cur = make(map[trace.ObjectID]struct{}, p.maxIDs)
	}
}
