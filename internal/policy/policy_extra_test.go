package policy

import (
	"math"
	"testing"

	"lfo/internal/gen"
	"lfo/internal/sim"
	"lfo/internal/trace"
)

// Behavioral tests for the individual policies beyond the shared
// capacity/hit-accounting checks in policy_test.go.

func TestGDWheelEvictsCheapestFirst(t *testing.T) {
	// Greedy-Dual: priority H = L + C. With equal recency, the object
	// with the lowest retrieval cost is evicted first.
	p := NewGDWheel(2)
	p.Request(trace.Request{Time: 0, ID: 1, Size: 1, Cost: 1000})
	p.Request(trace.Request{Time: 1, ID: 2, Size: 1, Cost: 5})
	// Cache full; inserting 3 must evict the cheap object 2.
	p.Request(trace.Request{Time: 2, ID: 3, Size: 1, Cost: 500})
	if !p.Request(trace.Request{Time: 3, ID: 1, Size: 1, Cost: 1000}) {
		t.Error("expensive object 1 was evicted before cheap object 2")
	}
	if p.Request(trace.Request{Time: 4, ID: 2, Size: 1, Cost: 5}) {
		t.Error("cheap object 2 survived")
	}
}

func TestGDWheelHitRestoresPriority(t *testing.T) {
	// After its priority decays (hand advances past it), a hit must
	// re-arm an object's priority to H = L + C.
	p := NewGDWheel(2)
	p.Request(trace.Request{Time: 0, ID: 1, Size: 1, Cost: 10})
	p.Request(trace.Request{Time: 1, ID: 2, Size: 1, Cost: 10})
	// Touch 1 repeatedly while streaming evictions through.
	for i := 0; i < 20; i++ {
		p.Request(trace.Request{Time: int64(2 + 2*i), ID: 1, Size: 1, Cost: 10})
		p.Request(trace.Request{Time: int64(3 + 2*i), ID: trace.ObjectID(100 + i), Size: 1, Cost: 10})
	}
	if !p.Request(trace.Request{Time: 100, ID: 1, Size: 1, Cost: 10}) {
		t.Error("frequently-hit object did not retain priority")
	}
}

func TestGDWheelHugeCostClamped(t *testing.T) {
	// Costs beyond the wheel range must clamp, not panic or corrupt.
	p := NewGDWheel(10)
	p.Request(trace.Request{Time: 0, ID: 1, Size: 5, Cost: 1e18})
	p.Request(trace.Request{Time: 1, ID: 2, Size: 5, Cost: 3})
	p.Request(trace.Request{Time: 2, ID: 3, Size: 5, Cost: 1e18}) // forces eviction
	if !p.Request(trace.Request{Time: 3, ID: 1, Size: 5, Cost: 1e18}) {
		t.Error("max-cost object evicted before cheap one")
	}
}

func TestSlotmapNext(t *testing.T) {
	var m slotmap
	if _, ok := m.next(0); ok {
		t.Error("empty slotmap found a slot")
	}
	m.set(5)
	m.set(130)
	m.set(255)
	if s, ok := m.next(0); !ok || s != 5 {
		t.Errorf("next(0) = %d,%v, want 5", s, ok)
	}
	if s, ok := m.next(6); !ok || s != 130 {
		t.Errorf("next(6) = %d,%v, want 130", s, ok)
	}
	if s, ok := m.next(131); !ok || s != 255 {
		t.Errorf("next(131) = %d,%v, want 255", s, ok)
	}
	if _, ok := m.next(256); ok {
		t.Error("next past end found a slot")
	}
	m.clear(130)
	if s, _ := m.next(6); s != 255 {
		t.Errorf("after clear, next(6) = %d, want 255", s)
	}
}

func TestTinyLFUAdmissionDuel(t *testing.T) {
	// A one-hit wonder must not displace an object with established
	// frequency.
	p := NewTinyLFU(3)
	// Build frequency for objects 1..3.
	for round := 0; round < 5; round++ {
		for id := trace.ObjectID(1); id <= 3; id++ {
			p.Request(trace.Request{Time: int64(round*3 + int(id)), ID: id, Size: 1, Cost: 1})
		}
	}
	// A stream of distinct one-timers: all should lose the duel.
	for i := 0; i < 50; i++ {
		p.Request(trace.Request{Time: int64(100 + i), ID: trace.ObjectID(1000 + i), Size: 1, Cost: 1})
	}
	for id := trace.ObjectID(1); id <= 3; id++ {
		if !p.Request(trace.Request{Time: 200, ID: id, Size: 1, Cost: 1}) {
			t.Errorf("hot object %d displaced by one-hit wonders", id)
		}
	}
}

func TestAdaptSizeRejectsHugeObjectsUnderPressure(t *testing.T) {
	// With many small popular objects and tight space, AdaptSize's tuned
	// admission should rarely admit giant objects.
	tr, err := gen.Generate(gen.CDNMix(60000, 13))
	if err != nil {
		t.Fatal(err)
	}
	tr = tr.WithCosts(trace.ObjectiveBHR)
	p := NewAdaptSize(4<<20, 1)
	m := sim.Run(tr, p, sim.Options{Warmup: 50000})
	// After tuning, the OHR should be competitive with LRU's.
	lru := sim.Run(tr, NewLRU(4<<20), sim.Options{Warmup: 50000})
	if m.OHR() <= lru.OHR() {
		t.Errorf("AdaptSize OHR %.4f <= LRU %.4f after tuning", m.OHR(), lru.OHR())
	}
}

func TestLHDClassesBySize(t *testing.T) {
	if lhdClass(1) == lhdClass(1<<20) {
		t.Error("1B and 1MB objects share an LHD class")
	}
	if got := lhdClass(1 << 62); got != lhdSizeClasses-1 {
		t.Errorf("huge object class = %d, want %d", got, lhdSizeClasses-1)
	}
}

func TestLHDSurvivesReconfigure(t *testing.T) {
	// Push enough traffic through to trigger several reconfigurations.
	tr, err := gen.Generate(gen.WebMix(3*lhdReconfigure, 2))
	if err != nil {
		t.Fatal(err)
	}
	p := NewLHD(4<<20, 1)
	m := sim.Run(tr, p, sim.Options{})
	if m.Hits == 0 {
		t.Error("LHD scored no hits across reconfigurations")
	}
	// Densities must remain finite and non-negative.
	for c := 0; c < lhdSizeClasses; c++ {
		for a := 0; a <= lhdAgeBuckets; a++ {
			d := p.density[c][a]
			if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
				t.Fatalf("density[%d][%d] = %g", c, a, d)
			}
		}
	}
}

func TestRLCLearnsFromDelayedRewards(t *testing.T) {
	// The Q-table must move away from zero as rewards arrive — the
	// mechanism works, it is just slow (the paper's point).
	tr, err := gen.Generate(gen.WebMix(20000, 3))
	if err != nil {
		t.Fatal(err)
	}
	p := NewRLC(4<<20, 1)
	sim.Run(tr, p, sim.Options{})
	nonZero := 0
	for sb := 0; sb < rlcSizeBuckets; sb++ {
		for rb := 0; rb < rlcRecencyBuckets; rb++ {
			if p.q[sb][rb][0] != 0 || p.q[sb][rb][1] != 0 {
				nonZero++
			}
		}
	}
	if nonZero == 0 {
		t.Error("RLC Q-table never updated")
	}
}

func TestHyperbolicPriorityDecaysWithAge(t *testing.T) {
	p := NewHyperbolic(100, 1)
	p.Request(trace.Request{Time: 0, ID: 1, Size: 10, Cost: 10})
	early := p.priority(1, 10)
	p.clock += 1000
	late := p.priority(1, 10)
	if late >= early {
		t.Errorf("priority did not decay: %g -> %g", early, late)
	}
}

func TestLRUKHistorySurvivesEviction(t *testing.T) {
	// LRU-K retains reference history for evicted objects (HIST), so a
	// re-inserted object keeps its backward K-distance standing.
	p := NewLRUK(2, 2)
	p.Request(trace.Request{Time: 0, ID: 1, Size: 1, Cost: 1})
	p.Request(trace.Request{Time: 1, ID: 1, Size: 1, Cost: 1}) // 1 has 2 refs
	p.Request(trace.Request{Time: 2, ID: 2, Size: 1, Cost: 1})
	p.Request(trace.Request{Time: 3, ID: 3, Size: 1, Cost: 1}) // evicts... 2 or 3 single-ref
	// Re-request 2: even if evicted, its history gives it 2 refs now.
	p.Request(trace.Request{Time: 4, ID: 2, Size: 1, Cost: 1})
	if len(p.hist[2]) < 2 {
		t.Errorf("object 2 history = %v, want 2 entries", p.hist[2])
	}
}

func TestS4LRUSegmentAccounting(t *testing.T) {
	p := NewS4LRU(40)
	ids := []trace.ObjectID{1, 2, 3, 4, 5}
	for round := 0; round < 4; round++ {
		for _, id := range ids {
			p.Request(trace.Request{Time: int64(round*5 + int(id)), ID: id, Size: 2, Cost: 2})
		}
	}
	// Total segment bytes must equal store usage.
	var segTotal int64
	for i := range p.segBytes {
		segTotal += p.segBytes[i]
		if p.segBytes[i] < 0 {
			t.Fatalf("segment %d negative bytes", i)
		}
	}
	if segTotal != p.store.Used() {
		t.Errorf("segment bytes %d != store used %d", segTotal, p.store.Used())
	}
}
