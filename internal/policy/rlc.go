package policy

import (
	"container/list"
	"math/bits"
	"math/rand"

	"lfo/internal/sim"
	"lfo/internal/trace"
)

// RLC state-space geometry: states are (log2 size, log2 recency) buckets.
const (
	rlcSizeBuckets    = 16
	rlcRecencyBuckets = 10
)

// RLC is a model-free reinforcement-learning cache in the style of the
// RL-based caching evaluated at HotNets'17 [48] and reproduced in Fig 1 of
// the paper: ε-greedy Q-learning chooses between admitting and bypassing
// each missed object over a coarse (size, recency) state space, with LRU
// eviction. Rewards arrive only when an admitted object later hits (or is
// evicted unused) — exactly the delayed-feedback pathology the paper
// identifies as the root cause of model-free RL's weakness for caching.
// Expect it to land near RND and LRU, well below GDSF.
type RLC struct {
	store *sim.Store[*rlcMeta]
	lru   *list.List
	rng   *rand.Rand

	q        [rlcSizeBuckets][rlcRecencyBuckets][2]float64
	epsilon  float64
	alpha    float64
	lastSeen map[trace.ObjectID]int64
	clock    int64
}

type rlcMeta struct {
	elem *list.Element
	sb   int // state at admission time
	rb   int
	hits int
}

// NewRLC returns the Q-learning cache baseline.
func NewRLC(capacity, seed int64) *RLC {
	return &RLC{
		store:    sim.NewStore[*rlcMeta](capacity),
		lru:      list.New(),
		rng:      rand.New(rand.NewSource(seed)),
		epsilon:  0.1,
		alpha:    0.1,
		lastSeen: make(map[trace.ObjectID]int64, 1024),
	}
}

// Name implements sim.Policy.
func (p *RLC) Name() string { return "RLC" }

func (p *RLC) state(r trace.Request) (int, int) {
	sb := bits.Len64(uint64(r.Size))
	if sb >= rlcSizeBuckets {
		sb = rlcSizeBuckets - 1
	}
	rb := rlcRecencyBuckets - 1 // never seen
	if last, ok := p.lastSeen[r.ID]; ok {
		rb = bits.Len64(uint64(p.clock - last))
		if rb >= rlcRecencyBuckets {
			rb = rlcRecencyBuckets - 1
		}
	}
	return sb, rb
}

// learn applies a bandit-style Q update for a delayed reward.
func (p *RLC) learn(sb, rb, action int, reward float64) {
	q := &p.q[sb][rb][action]
	*q += p.alpha * (reward - *q)
}

// Request implements sim.Policy.
func (p *RLC) Request(r trace.Request) bool {
	p.clock++
	sb, rb := p.state(r)
	defer func() { p.lastSeen[r.ID] = p.clock }()

	if e := p.store.Get(r.ID); e != nil {
		m := e.Payload
		m.hits++
		// Delayed reward: the admission decision that placed this
		// object finally pays off.
		p.learn(m.sb, m.rb, 1, 1)
		p.lru.MoveToFront(m.elem)
		return true
	}
	if r.Size > p.store.Capacity() {
		return false
	}
	// ε-greedy action selection: 0 = bypass, 1 = admit.
	action := 0
	if p.rng.Float64() < p.epsilon {
		action = p.rng.Intn(2)
	} else if p.q[sb][rb][1] >= p.q[sb][rb][0] {
		action = 1
	}
	if action == 0 {
		p.learn(sb, rb, 0, 0) // bypass: neutral immediate reward
		return false
	}
	for !p.store.Fits(r.Size) {
		tail := p.lru.Back()
		victim := tail.Value.(trace.ObjectID)
		vm := p.store.Get(victim).Payload
		if vm.hits == 0 {
			// Evicted unused: the admission wasted space.
			p.learn(vm.sb, vm.rb, 1, -0.2)
		}
		p.lru.Remove(tail)
		p.store.Remove(victim)
	}
	e := p.store.Add(r.ID, r.Size)
	m := &rlcMeta{sb: sb, rb: rb}
	m.elem = p.lru.PushFront(r.ID)
	e.Payload = m
	return false
}
