package policy

import (
	"container/list"

	"lfo/internal/sim"
	"lfo/internal/sketch"
	"lfo/internal/trace"
)

// TinyLFU (Einziger & Friedman [24]) wraps an LRU cache with a
// frequency-based admission filter: on a miss with a full cache, the
// candidate is admitted only if its sketched frequency exceeds that of the
// LRU victim it would displace. A doorkeeper Bloom filter absorbs one-hit
// wonders, and the sketch is halved every sample window to age estimates.
//
// TinyLFU is not part of the paper's Fig 6 line-up; it is included as the
// natural admission-control baseline for LFO's admission learning.
type TinyLFU struct {
	store *sim.Store[*list.Element]
	lru   *list.List
	cm    *sketch.CountMin
	door  *sketch.Bloom

	sampleSize int
	samples    int
}

// NewTinyLFU returns an LRU cache guarded by a TinyLFU admission filter.
func NewTinyLFU(capacity int64) *TinyLFU {
	// Sketch width proportional to the expected object count, assuming
	// ~16KB mean objects, clamped to a sane range.
	width := int(capacity / (16 << 10))
	if width < 1<<12 {
		width = 1 << 12
	}
	if width > 1<<22 {
		width = 1 << 22
	}
	return &TinyLFU{
		store:      sim.NewStore[*list.Element](capacity),
		lru:        list.New(),
		cm:         sketch.NewCountMin(width, 4),
		door:       sketch.NewBloom(width*4, 3),
		sampleSize: width * 8,
	}
}

// Name implements sim.Policy.
func (p *TinyLFU) Name() string { return "TinyLFU" }

// record counts an access in the doorkeeper/sketch hierarchy and returns
// the object's current frequency estimate.
func (p *TinyLFU) record(id trace.ObjectID) byte {
	key := uint64(id)
	p.samples++
	if p.samples >= p.sampleSize {
		p.cm.Reset()
		p.door.Clear()
		p.samples = 0
	}
	if !p.door.Add(key) {
		// First sighting in this window: the doorkeeper absorbs it.
		return p.estimate(id)
	}
	p.cm.Add(key)
	return p.estimate(id)
}

// estimate returns the doorkeeper-aware frequency estimate.
func (p *TinyLFU) estimate(id trace.ObjectID) byte {
	key := uint64(id)
	est := p.cm.Estimate(key)
	if p.door.Contains(key) && est < 15 {
		est++
	}
	return est
}

// Request implements sim.Policy.
func (p *TinyLFU) Request(r trace.Request) bool {
	freq := p.record(r.ID)
	if e := p.store.Get(r.ID); e != nil {
		p.lru.MoveToFront(e.Payload)
		return true
	}
	if r.Size > p.store.Capacity() {
		return false
	}
	// Admission duel: candidate vs the victims it would displace.
	for !p.store.Fits(r.Size) {
		tail := p.lru.Back()
		victim := tail.Value.(trace.ObjectID)
		if p.estimate(victim) >= freq {
			return false // victim wins; candidate is not admitted
		}
		p.lru.Remove(tail)
		p.store.Remove(victim)
	}
	e := p.store.Add(r.ID, r.Size)
	e.Payload = p.lru.PushFront(r.ID)
	return false
}
