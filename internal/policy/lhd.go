package policy

import (
	"math"
	"math/bits"
	"math/rand"

	"lfo/internal/sim"
	"lfo/internal/trace"
)

// LHD geometry.
const (
	lhdAgeBuckets  = 128   // coarsened age histogram size
	lhdSizeClasses = 16    // objects are classified by log2(size)
	lhdAgeShift    = 6     // age bucket = (now - lastAccess) >> shift
	lhdReconfigure = 20000 // accesses between density-table rebuilds
	lhdEWMADecay   = 0.9   // histogram decay per reconfiguration
)

// LHD (Beckmann, Chen, Cidon, NSDI 2018 [7]) evicts by lowest hit
// density: the expected hits per byte·time an object will deliver if kept.
// The implementation follows the paper's structure — per-class age
// histograms of hits and evictions, periodically folded into a hit-density
// table with exponential decay, and sampled eviction of the
// minimum-density candidate. Classes here are log2-size classes.
type LHD struct {
	store *sim.Store[int]
	ids   []trace.ObjectID
	meta  map[trace.ObjectID]*lhdMeta
	rng   *rand.Rand
	clock int64

	hits      [lhdSizeClasses][lhdAgeBuckets + 1]float64
	evictions [lhdSizeClasses][lhdAgeBuckets + 1]float64
	density   [lhdSizeClasses][lhdAgeBuckets + 1]float64
	accesses  int
}

type lhdMeta struct {
	lastAccess int64
	class      int
}

// NewLHD returns a hit-density cache with sampled eviction.
func NewLHD(capacity, seed int64) *LHD {
	p := &LHD{
		store: sim.NewStore[int](capacity),
		meta:  make(map[trace.ObjectID]*lhdMeta, 1024),
		rng:   rand.New(rand.NewSource(seed)),
	}
	// Optimistic priors: young objects look promising until data says
	// otherwise.
	for c := 0; c < lhdSizeClasses; c++ {
		for a := 0; a <= lhdAgeBuckets; a++ {
			p.density[c][a] = 1 / float64(a+1)
		}
	}
	return p
}

// Name implements sim.Policy.
func (p *LHD) Name() string { return "LHD" }

func lhdClass(size int64) int {
	c := bits.Len64(uint64(size)) // log2 bucket
	if c >= lhdSizeClasses {
		c = lhdSizeClasses - 1
	}
	return c
}

func (p *LHD) ageBucket(lastAccess int64) int {
	a := (p.clock - lastAccess) >> lhdAgeShift
	if a > lhdAgeBuckets {
		a = lhdAgeBuckets
	}
	return int(a)
}

// reconfigure folds the hit/eviction histograms into the density table:
// density(a) = expected hits beyond age a per unit of remaining lifetime,
// then decays the histograms.
func (p *LHD) reconfigure() {
	for c := 0; c < lhdSizeClasses; c++ {
		// Backward scan maintaining, for each age a:
		//   cumHits     = Σ_{t≥a} hits[t]
		//   tail        = Σ_{t>a} (hits[t]+evictions[t])
		//   cumLifetime = Σ_{t≥a} (hits[t]+evictions[t])·(t−a+1)
		// using L(a) = L(a+1) + tail(a+1) + events[a].
		var cumHits, tail, cumLifetime float64
		for a := lhdAgeBuckets; a >= 0; a-- {
			events := p.hits[c][a] + p.evictions[c][a]
			cumHits += p.hits[c][a]
			cumLifetime += tail + events
			tail += events
			if cumLifetime > 0 {
				p.density[c][a] = cumHits / cumLifetime
			}
		}
		for a := 0; a <= lhdAgeBuckets; a++ {
			p.hits[c][a] *= lhdEWMADecay
			p.evictions[c][a] *= lhdEWMADecay
		}
	}
}

// hitDensity is the per-byte density of a resident object now.
func (p *LHD) hitDensity(id trace.ObjectID, size int64) float64 {
	m := p.meta[id]
	return p.density[m.class][p.ageBucket(m.lastAccess)] / float64(size)
}

func (p *LHD) evictOne() {
	var victim trace.ObjectID
	best := math.Inf(1)
	n := evictionSamples
	if n > len(p.ids) {
		n = len(p.ids)
	}
	for i := 0; i < n; i++ {
		id := p.ids[p.rng.Intn(len(p.ids))]
		e := p.store.Get(id)
		if d := p.hitDensity(id, e.Size); d < best {
			best, victim = d, id
		}
	}
	m := p.meta[victim]
	p.evictions[m.class][p.ageBucket(m.lastAccess)]++
	vi := p.store.Get(victim).Payload
	last := len(p.ids) - 1
	p.ids[vi] = p.ids[last]
	p.store.Get(p.ids[vi]).Payload = vi
	p.ids = p.ids[:last]
	p.store.Remove(victim)
	delete(p.meta, victim)
}

// Request implements sim.Policy.
func (p *LHD) Request(r trace.Request) bool {
	p.clock++
	p.accesses++
	if p.accesses%lhdReconfigure == 0 {
		p.reconfigure()
	}
	if p.store.Has(r.ID) {
		m := p.meta[r.ID]
		p.hits[m.class][p.ageBucket(m.lastAccess)]++
		m.lastAccess = p.clock
		return true
	}
	if r.Size > p.store.Capacity() {
		return false
	}
	for !p.store.Fits(r.Size) {
		p.evictOne()
	}
	e := p.store.Add(r.ID, r.Size)
	e.Payload = len(p.ids)
	p.ids = append(p.ids, r.ID)
	p.meta[r.ID] = &lhdMeta{lastAccess: p.clock, class: lhdClass(r.Size)}
	return false
}
