package policy

import (
	"math/rand"

	"lfo/internal/sim"
	"lfo/internal/trace"
)

// evictionSamples is the candidate count for sampled-eviction policies
// (Hyperbolic and LHD both use sampling, [13], [7]).
const evictionSamples = 64

// Hyperbolic caching (Blankstein, Sen, Freedman, ATC 2017 [13]) ranks
// objects by frequency divided by time in cache, which — unlike LRU or
// LFU — has no fixed decay shape. Eviction samples a set of resident
// objects and drops the minimum-priority one. Priorities are divided by
// size so large objects must earn their keep (the paper's size-aware
// variant).
type Hyperbolic struct {
	store *sim.Store[int] // payload: index into ids
	ids   []trace.ObjectID
	meta  map[trace.ObjectID]*hypMeta
	rng   *rand.Rand
	clock int64
}

type hypMeta struct {
	freq    int64
	arrival int64
}

// NewHyperbolic returns a hyperbolic cache with sampled eviction.
func NewHyperbolic(capacity, seed int64) *Hyperbolic {
	return &Hyperbolic{
		store: sim.NewStore[int](capacity),
		meta:  make(map[trace.ObjectID]*hypMeta, 1024),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Name implements sim.Policy.
func (p *Hyperbolic) Name() string { return "Hyperbolic" }

// priority is the hyperbolic rank: frequency per unit time in cache, per
// byte.
func (p *Hyperbolic) priority(id trace.ObjectID, size int64) float64 {
	m := p.meta[id]
	age := p.clock - m.arrival
	if age < 1 {
		age = 1
	}
	return float64(m.freq) / (float64(age) * float64(size))
}

// evictOne removes the lowest-priority object among a random sample.
func (p *Hyperbolic) evictOne() {
	var victim trace.ObjectID
	best := -1.0
	n := evictionSamples
	if n > len(p.ids) {
		n = len(p.ids)
	}
	for i := 0; i < n; i++ {
		id := p.ids[p.rng.Intn(len(p.ids))]
		e := p.store.Get(id)
		pr := p.priority(id, e.Size)
		if best < 0 || pr < best {
			best, victim = pr, id
		}
	}
	vi := p.store.Get(victim).Payload
	last := len(p.ids) - 1
	p.ids[vi] = p.ids[last]
	p.store.Get(p.ids[vi]).Payload = vi
	p.ids = p.ids[:last]
	p.store.Remove(victim)
	delete(p.meta, victim)
}

// Request implements sim.Policy.
func (p *Hyperbolic) Request(r trace.Request) bool {
	p.clock++
	if p.store.Has(r.ID) {
		p.meta[r.ID].freq++
		return true
	}
	if r.Size > p.store.Capacity() {
		return false
	}
	for !p.store.Fits(r.Size) {
		p.evictOne()
	}
	e := p.store.Add(r.ID, r.Size)
	e.Payload = len(p.ids)
	p.ids = append(p.ids, r.ID)
	p.meta[r.ID] = &hypMeta{freq: 1, arrival: p.clock}
	return false
}
