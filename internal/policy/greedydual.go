package policy

import (
	"lfo/internal/pq"
	"lfo/internal/sim"
	"lfo/internal/trace"
)

// LFUDA is LFU with Dynamic Aging (Arlitt et al. [4], Shah et al. [67]):
// an object's key is K_i = F_i + L where F_i is its in-cache frequency and
// L is a global age that jumps to the key of each evicted object. Aging
// lets formerly hot objects drain out after the workload shifts.
type LFUDA struct {
	store *sim.Store[int64] // payload: frequency
	pq    *pq.Queue
	age   float64
}

// NewLFUDA returns an LFU-with-dynamic-aging cache.
func NewLFUDA(capacity int64) *LFUDA {
	return &LFUDA{store: sim.NewStore[int64](capacity), pq: pq.New()}
}

// Name implements sim.Policy.
func (p *LFUDA) Name() string { return "LFUDA" }

// Request implements sim.Policy.
func (p *LFUDA) Request(r trace.Request) bool {
	if e := p.store.Get(r.ID); e != nil {
		e.Payload++
		p.pq.Update(r.ID, float64(e.Payload)+p.age)
		return true
	}
	if r.Size > p.store.Capacity() {
		return false
	}
	for !p.store.Fits(r.Size) {
		id, key := p.pq.PopMin()
		p.age = key // dynamic aging: L := key of evicted object
		p.store.Remove(id)
	}
	e := p.store.Add(r.ID, r.Size)
	e.Payload = 1
	p.pq.Push(r.ID, 1+p.age)
	return false
}

// GDSF is Greedy-Dual-Size-Frequency (Cherkasova [17]): priority
// H_i = L + F_i * C_i / S_i, evicting the minimum and aging L to the
// evicted priority. With C_i = S_i this favors frequency; with C_i = 1 it
// favors small objects (the classic OHR-optimizing configuration).
type GDSF struct {
	store *sim.Store[gdsfMeta]
	pq    *pq.Queue
	age   float64
}

// gdsfMeta is stored by value in the entry payload: the store's entry
// freelist then recycles it with the entry, keeping admissions free of
// per-object metadata allocations.
type gdsfMeta struct {
	freq int64
	cost float64
}

// NewGDSF returns a Greedy-Dual-Size-Frequency cache.
func NewGDSF(capacity int64) *GDSF {
	return &GDSF{store: sim.NewStore[gdsfMeta](capacity), pq: pq.New()}
}

// Name implements sim.Policy.
func (p *GDSF) Name() string { return "GDSF" }

func (p *GDSF) priority(m gdsfMeta, size int64) float64 {
	return p.age + float64(m.freq)*m.cost/float64(size)
}

// Request implements sim.Policy.
func (p *GDSF) Request(r trace.Request) bool {
	if e := p.store.Get(r.ID); e != nil {
		e.Payload.freq++
		e.Payload.cost = r.Cost
		p.pq.Update(r.ID, p.priority(e.Payload, e.Size))
		return true
	}
	if r.Size > p.store.Capacity() {
		return false
	}
	for !p.store.Fits(r.Size) {
		id, key := p.pq.PopMin()
		p.age = key
		p.store.Remove(id)
	}
	e := p.store.Add(r.ID, r.Size)
	e.Payload = gdsfMeta{freq: 1, cost: r.Cost}
	p.pq.Push(r.ID, p.priority(e.Payload, r.Size))
	return false
}
