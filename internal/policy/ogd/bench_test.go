package ogd

import (
	"testing"

	"lfo/internal/trace"
)

// BenchmarkOGDRequest drives the full policy (gradient step + lazy
// projection + rounding) at steady-state churn: the universe is 4x the
// capacity so every request fights the projection and the integral store
// keeps evicting. With the pq freelists and steady-state map buckets the
// per-request path is allocation-free; the budget is pinned at 0 in
// testdata/alloc_budgets.txt.
func BenchmarkOGDRequest(b *testing.B) {
	const (
		capacity = 1 << 16 // 64 resident objects of 1 KiB
		objSize  = 1 << 10
		universe = 256 // 4x capacity: constant projection pressure
	)
	c, err := New(Config{CacheSize: capacity})
	if err != nil {
		b.Fatal(err)
	}
	reqs := make([]trace.Request, universe)
	for i := range reqs {
		reqs[i] = trace.Request{Time: int64(i), ID: trace.ObjectID(i), Size: objSize, Cost: objSize}
	}
	// Warm through the universe twice so the pq freelists and map buckets
	// reach their steady-state footprint.
	for round := 0; round < 2; round++ {
		for _, r := range reqs {
			c.Request(r)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Request(reqs[i%universe])
	}
}

// BenchmarkOGDLearnerUpdate isolates the fractional learner (the piece
// internal/core runs as the hybrid shadow teacher) without the integral
// store.
func BenchmarkOGDLearnerUpdate(b *testing.B) {
	const (
		capacity = 1 << 16
		objSize  = 1 << 10
		universe = 256
	)
	l, err := NewLearner(Config{CacheSize: capacity})
	if err != nil {
		b.Fatal(err)
	}
	reqs := make([]trace.Request, universe)
	for i := range reqs {
		reqs[i] = trace.Request{Time: int64(i), ID: trace.ObjectID(i), Size: objSize, Cost: objSize}
	}
	for round := 0; round < 2; round++ {
		for _, r := range reqs {
			l.Update(r)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Update(reqs[i%universe])
	}
}
