// Package ogd implements an online gradient-based caching policy in the
// style of Paschos et al.'s online convex optimization formulation of
// caching and Carra/Neglia's logarithmic-complexity implementation of it.
//
// The policy maintains a *fractional* cache allocation y ∈ [0,1]^N with
// Σ sᵢ·yᵢ ≤ C (C the capacity in bytes). Each request to object i is a
// (sub)gradient of the linear utility wᵢ·sᵢ·yᵢ — the retrieval cost saved
// if a wᵢ-per-byte object is (fractionally) cached — so online gradient
// descent takes a step on the requested coordinate alone:
//
//	yᵢ ← min(1, yᵢ + η·ŵᵢ)   with ŵᵢ = (costᵢ/sizeᵢ) / mean cost density
//
// and then restores feasibility by pushing the allocation back inside the
// capacity polytope. The exact Euclidean projection touches every
// coordinate; following Carra/Neglia, the implementation substitutes the
// standard lazy projection that removes mass from the *smallest*
// coordinates first (pop-min on an indexed heap) until Σ sᵢ·yᵢ ≤ C. Every
// request therefore costs O(log n) amortized: one heap update for the
// gradient step plus pop-mins that are each paid for by a previous
// insertion.
//
// Because a real cache stores whole objects, the fractional state is
// rounded deterministically: an object is admitted to the integral cache
// when its allocation reaches RoundThreshold, and evictions pop the
// resident with the smallest allocation. No randomness anywhere — the
// policy is byte-identical across reruns, seeds, and worker counts
// (nothing in it is parallel), which is what lets the hybrid bridge in
// internal/core lean on it between window retrains.
package ogd

import (
	"fmt"

	"lfo/internal/pq"
	"lfo/internal/sim"
	"lfo/internal/trace"
)

// DefaultEta is the default gradient step scale. An average-cost-density
// object steps by exactly Eta per request, so 0.25 crosses the default
// rounding threshold on its second request absent capacity pressure —
// close to the second-hit heuristic CDNs deploy, but weighted by cost
// density and capacity competition.
const DefaultEta = 0.25

// DefaultRoundThreshold is the fractional allocation at which the
// deterministic rounding admits an object to the integral cache.
const DefaultRoundThreshold = 0.5

// Config parameterizes the policy.
type Config struct {
	// CacheSize is the capacity in bytes. Required.
	CacheSize int64
	// Eta is the gradient step scale; 0 means DefaultEta. Must not be
	// negative.
	Eta float64
	// RoundThreshold is the y at which rounding admits an object; 0 means
	// DefaultRoundThreshold. Must lie in (0, 1].
	RoundThreshold float64
}

func (c Config) withDefaults() Config {
	if c.Eta == 0 {
		c.Eta = DefaultEta
	}
	if c.RoundThreshold == 0 {
		c.RoundThreshold = DefaultRoundThreshold
	}
	return c
}

func (c Config) validate() error {
	if c.Eta < 0 {
		return fmt.Errorf("ogd: Eta must be non-negative, got %v", c.Eta)
	}
	if c.RoundThreshold <= 0 || c.RoundThreshold > 1 {
		return fmt.Errorf("ogd: RoundThreshold must be in (0,1], got %v", c.RoundThreshold)
	}
	return nil
}

// Learner is the fractional OGD state on its own, without the integral
// rounding: a capacity-constrained allocation updated per request. The
// Cache embeds one; internal/core's hybrid admission runs one as a shadow
// learner whose allocations steer the per-class bias between retrains.
type Learner struct {
	capacity int64
	eta      float64
	// frac holds every object with yᵢ > 0, min-y first, so the lazy
	// projection pops the smallest coordinates. Priorities are the yᵢ.
	frac *pq.Queue
	// sizes remembers sᵢ for every object in frac (the projection needs
	// byte masses, not just allocations).
	sizes map[trace.ObjectID]int64
	// mass is Σ sᵢ·yᵢ, maintained incrementally and clamped back to the
	// capacity by every projection, so float drift cannot accumulate.
	mass float64
	// wSum and wCount track the running mean cost density (cost/size)
	// over all requests seen, making the step scale-free: a request of
	// average density steps by exactly Eta whatever the trace's cost
	// objective (unit costs, byte costs, latency costs).
	wSum   float64
	wCount int64
}

// NewLearner returns a fractional OGD learner.
func NewLearner(cfg Config) (*Learner, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.CacheSize <= 0 {
		return nil, fmt.Errorf("ogd: CacheSize must be positive, got %d", cfg.CacheSize)
	}
	return &Learner{
		capacity: cfg.CacheSize,
		eta:      cfg.Eta,
		frac:     pq.New(),
		sizes:    make(map[trace.ObjectID]int64, 1024),
	}, nil
}

// Update takes the gradient step for one request and projects back onto
// the capacity constraint, returning the object's post-projection
// fractional allocation. This is the per-request hot path: heap
// operations recycle entries through pq's freelist and the map churns
// over a steady-state population, so a warmed learner allocates nothing.
//
//lfo:hotpath
func (l *Learner) Update(r trace.Request) float64 {
	// Per-byte utility, normalized by the running mean density so the
	// step size is invariant to the trace's cost scale. A costless
	// request (a trace without costs) falls back to cost == size, the
	// byte-hit-ratio objective.
	w := r.Cost / float64(r.Size)
	if r.Cost <= 0 {
		w = 1
	}
	l.wSum += w
	l.wCount++
	w *= float64(l.wCount) / l.wSum
	y, tracked := l.frac.Priority(r.ID)
	newY := y + l.eta*w
	if newY > 1 {
		newY = 1
	}
	if tracked {
		l.frac.Update(r.ID, newY)
	} else {
		l.frac.Push(r.ID, newY)
		l.sizes[r.ID] = r.Size
	}
	l.mass += (newY - y) * float64(r.Size)

	// Lazy projection: shave the smallest allocations until the byte
	// mass fits. Each full removal is paid for by the Push that created
	// the entry; at most one partial reduction per request.
	capf := float64(l.capacity)
	for l.mass > capf && l.frac.Len() > 0 {
		id, my := l.frac.Min()
		sz := float64(l.sizes[id])
		excess := l.mass - capf
		if my*sz <= excess {
			l.frac.Remove(id)
			delete(l.sizes, id)
			l.mass -= my * sz
		} else {
			l.frac.Update(id, my-excess/sz)
			l.mass = capf
		}
	}

	y, tracked = l.frac.Priority(r.ID)
	if !tracked {
		return 0
	}
	return y
}

// Y returns the object's current fractional allocation (0 if untracked).
func (l *Learner) Y(id trace.ObjectID) float64 {
	y, _ := l.frac.Priority(id)
	return y
}

// Mass returns the allocated byte mass Σ sᵢ·yᵢ (always ≤ capacity after
// an Update returns).
func (l *Learner) Mass() float64 { return l.mass }

// Tracked returns the number of objects with a positive allocation.
func (l *Learner) Tracked() int { return l.frac.Len() }

// Cache is the integral caching policy: the fractional learner plus
// deterministic rounding. It implements sim.Policy.
type Cache struct {
	learner *Learner
	thresh  float64
	store   *sim.Store[struct{}]
	// res ranks residents by the fractional allocation they held at
	// their last request, min first, so eviction drops the object the
	// online learner values least.
	res *pq.Queue
}

// New returns an OGD cache. The seed every other policy constructor
// takes is deliberately absent: the policy has no random state.
func New(cfg Config) (*Cache, error) {
	cfg = cfg.withDefaults()
	learner, err := NewLearner(cfg)
	if err != nil {
		return nil, err
	}
	return &Cache{
		learner: learner,
		thresh:  cfg.RoundThreshold,
		store:   sim.NewStore[struct{}](cfg.CacheSize),
		res:     pq.New(),
	}, nil
}

// Name implements sim.Policy.
func (c *Cache) Name() string { return "ogd" }

// Learner returns the fractional state backing the cache.
func (c *Cache) Learner() *Learner { return c.learner }

// Request implements sim.Policy: one gradient step, then the rounding
// decision against the integral store.
func (c *Cache) Request(r trace.Request) bool {
	y := c.learner.Update(r)
	if c.store.Has(r.ID) {
		c.res.Update(r.ID, y)
		return true
	}
	if y >= c.thresh && r.Size <= c.store.Capacity() {
		for !c.store.Fits(r.Size) {
			id, _ := c.res.PopMin()
			c.store.Remove(id)
		}
		c.store.Add(r.ID, r.Size)
		c.res.Push(r.ID, y)
	}
	return false
}

// Residents returns the integral cache's object count.
func (c *Cache) Residents() int { return c.store.Len() }

// UsedBytes returns the integral cache's resident bytes.
func (c *Cache) UsedBytes() int64 { return c.store.Used() }
