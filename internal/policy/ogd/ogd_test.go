package ogd

import (
	"testing"

	"lfo/internal/gen"
	"lfo/internal/trace"
)

func webTrace(t testing.TB, n int, seed int64) *trace.Trace {
	t.Helper()
	tr, err := gen.Generate(gen.WebMix(n, seed))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return tr
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"zero capacity", Config{}},
		{"negative capacity", Config{CacheSize: -1}},
		{"negative eta", Config{CacheSize: 1 << 20, Eta: -0.1}},
		{"threshold above one", Config{CacheSize: 1 << 20, RoundThreshold: 1.5}},
		{"negative threshold", Config{CacheSize: 1 << 20, RoundThreshold: -0.5}},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg); err == nil {
			t.Errorf("%s: New accepted invalid config %+v", tc.name, tc.cfg)
		}
		if _, err := NewLearner(tc.cfg); err == nil {
			t.Errorf("%s: NewLearner accepted invalid config %+v", tc.name, tc.cfg)
		}
	}
	if _, err := New(Config{CacheSize: 1 << 20}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

// TestGradientStepAndRounding pins the core dynamics: with Eta 0.25 and
// threshold 0.5 under byte-hit costs, the second request to an object
// (absent capacity pressure) crosses the threshold and admits it, so the
// third is a hit.
func TestGradientStepAndRounding(t *testing.T) {
	c, err := New(Config{CacheSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	r := trace.Request{ID: 7, Size: 1 << 10, Cost: 1 << 10}
	want := []bool{false, false, true, true}
	for i, w := range want {
		if got := c.Request(r); got != w {
			t.Fatalf("request %d: hit = %v, want %v (y=%v)", i, got, w, c.Learner().Y(r.ID))
		}
	}
	if y := c.Learner().Y(7); y != 1 {
		t.Errorf("after 4 requests y = %v, want saturated at 1", y)
	}
}

// TestCostlessFallback: a trace without costs behaves as cost == size.
func TestCostlessFallback(t *testing.T) {
	withCost, _ := NewLearner(Config{CacheSize: 1 << 20})
	costless, _ := NewLearner(Config{CacheSize: 1 << 20})
	a := withCost.Update(trace.Request{ID: 1, Size: 2048, Cost: 2048})
	b := costless.Update(trace.Request{ID: 1, Size: 2048})
	if a != b {
		t.Errorf("costless update y = %v, want %v (cost==size fallback)", b, a)
	}
}

// TestProjectionInvariants drives the learner well past capacity and
// checks the feasibility invariant Σ sᵢ·yᵢ ≤ C after every update, and
// that allocations stay in [0,1].
func TestProjectionInvariants(t *testing.T) {
	const capacity = 64 << 10
	l, err := NewLearner(Config{CacheSize: capacity})
	if err != nil {
		t.Fatal(err)
	}
	tr := webTrace(t, 20000, 42)
	for i, r := range tr.Requests {
		y := l.Update(r)
		if y < 0 || y > 1 {
			t.Fatalf("request %d: y = %v out of [0,1]", i, y)
		}
		if l.Mass() > capacity*1.000001 {
			t.Fatalf("request %d: mass %v exceeds capacity %d", i, l.Mass(), capacity)
		}
	}
	if l.Tracked() == 0 {
		t.Fatal("learner tracked nothing over a 20k-request trace")
	}
}

// TestCacheCapacity drives the integral cache on a trace whose working
// set far exceeds capacity and checks the store never overflows.
func TestCacheCapacity(t *testing.T) {
	const capacity = 256 << 10
	c, err := New(Config{CacheSize: capacity})
	if err != nil {
		t.Fatal(err)
	}
	tr := webTrace(t, 30000, 7)
	hits := 0
	for _, r := range tr.Requests {
		if c.Request(r) {
			hits++
		}
		if c.UsedBytes() > capacity {
			t.Fatalf("store used %d bytes over capacity %d", c.UsedBytes(), capacity)
		}
	}
	if hits == 0 {
		t.Error("OGD cache scored zero hits on a Zipf-skewed trace")
	}
	if c.Residents() == 0 {
		t.Error("OGD cache ended with zero residents")
	}
}

// TestOversizedObjectSkipped: an object larger than the whole cache must
// never be admitted (and must not panic the store).
func TestOversizedObjectSkipped(t *testing.T) {
	c, err := New(Config{CacheSize: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	r := trace.Request{ID: 1, Size: 1 << 20, Cost: 1 << 20}
	for i := 0; i < 10; i++ {
		if c.Request(r) {
			t.Fatal("oversized object reported as hit")
		}
	}
	if c.Residents() != 0 {
		t.Fatalf("oversized object admitted (%d residents)", c.Residents())
	}
}

// decisions runs the policy over a trace and returns the hit/miss log.
func decisions(t *testing.T, c *Cache, tr *trace.Trace) []bool {
	t.Helper()
	out := make([]bool, len(tr.Requests))
	for i, r := range tr.Requests {
		out[i] = c.Request(r)
	}
	return out
}

// TestDeterministicReruns: the full decision log is identical across
// independent instances on the same trace — the policy has no hidden
// state, clock, or randomness.
func TestDeterministicReruns(t *testing.T) {
	tr := webTrace(t, 20000, 42)
	cfg := Config{CacheSize: 512 << 10}
	a, _ := New(cfg)
	b, _ := New(cfg)
	da, db := decisions(t, a, tr), decisions(t, b, tr)
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("decision %d differs across reruns: %v vs %v", i, da[i], db[i])
		}
	}
	if a.Learner().Mass() != b.Learner().Mass() {
		t.Errorf("final mass differs: %v vs %v", a.Learner().Mass(), b.Learner().Mass())
	}
}
