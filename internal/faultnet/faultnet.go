// Package faultnet is a seeded, deterministic fault-injection layer for
// the serving path: wrappers for net.Listener and net.Conn that inject
// partial reads, partial writes that desynchronize the stream, stalls
// that run into the peer's I/O deadline, mid-frame connection drops, and
// transient accept errors.
//
// Faults follow a Schedule — a pure function of (seed, connection index,
// operation kind, operation index) built on SplitMix64 hashing. Nothing
// consults the wall clock or the process-global random source, so the
// same seed against the same deterministic peer behavior injects exactly
// the same fault sequence on every run and for any worker count: the
// decision for a connection's k-th read depends only on which connection
// it is and that it is the k-th read, never on cross-connection timing.
// That makes chaos tests reproducible — observed failure counters can be
// compared exactly against the schedule's own injection counters (Stats).
//
// The layer wraps either side: wrap a server's listener with Wrap to
// shake out handler hardening, or wrap the conn a client dials (see
// WrapConn) to exercise retry/reconnect logic.
package faultnet

import (
	"errors"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Op identifies the I/O operation a fault decision applies to.
type Op uint8

// Operation kinds.
const (
	OpRead Op = iota
	OpWrite
	OpAccept
)

// Action is what the schedule does to one operation.
type Action uint8

// Actions, in schedule precedence order.
const (
	// Pass forwards the operation unchanged.
	Pass Action = iota
	// Short delivers only a prefix: a read returns at most N bytes (no
	// error — exercises partial-read handling), a write writes N bytes to
	// the underlying conn and then fails with ErrInjected, leaving the
	// peer with a truncated frame (a desynchronized stream).
	Short
	// Stall blocks the operation until the deadline configured via
	// SetReadDeadline/SetWriteDeadline passes (failing with
	// os.ErrDeadlineExceeded), or until the conn is closed (failing with
	// net.ErrClosed) when no deadline is set.
	Stall
	// Drop closes the underlying connection and fails with ErrInjected.
	Drop
	// Reject makes Accept return a transient error without consuming the
	// pending connection (OpAccept only).
	Reject
)

// String names the action for test output.
func (a Action) String() string {
	switch a {
	case Pass:
		return "pass"
	case Short:
		return "short"
	case Stall:
		return "stall"
	case Drop:
		return "drop"
	case Reject:
		return "reject"
	}
	return "unknown"
}

// Decision is the schedule's verdict for one operation.
type Decision struct {
	Action Action
	// N is the prefix length for Short.
	N int
}

// ErrInjected is the error surfaced by injected drops and partial writes.
var ErrInjected = errors.New("faultnet: injected fault")

// acceptErr is the transient error injected into Accept.
type acceptErr struct{}

func (acceptErr) Error() string   { return "faultnet: injected accept error" }
func (acceptErr) Timeout() bool   { return false }
func (acceptErr) Temporary() bool { return true }

// Config sets per-operation fault rates in permille (0..1000). The zero
// value injects nothing.
type Config struct {
	// Seed keys the schedule; the same seed reproduces the same faults.
	Seed uint64
	// ShortRead / ShortWrite are partial-delivery rates.
	ShortRead, ShortWrite int
	// StallRead / StallWrite are stall rates.
	StallRead, StallWrite int
	// DropRead / DropWrite are connection-drop rates.
	DropRead, DropWrite int
	// AcceptError is the transient accept-failure rate.
	AcceptError int
	// MaxShort caps the prefix length of Short faults (0 means 8 bytes).
	MaxShort int
}

// Stats counts the faults a schedule actually injected. For a
// deterministic peer the counts are identical across runs.
type Stats struct {
	ShortReads, ShortWrites int64
	StallReads, StallWrites int64
	DropReads, DropWrites   int64
	AcceptErrors            int64
}

// Schedule decides faults. It is safe for concurrent use: decisions are
// pure functions of the key, and the injection counters are atomic.
type Schedule struct {
	cfg Config

	shortReads, shortWrites atomic.Int64
	stallReads, stallWrites atomic.Int64
	dropReads, dropWrites   atomic.Int64
	acceptErrors            atomic.Int64
}

// NewSchedule returns a schedule for the config.
func NewSchedule(cfg Config) *Schedule {
	if cfg.MaxShort <= 0 {
		cfg.MaxShort = 8
	}
	return &Schedule{cfg: cfg}
}

// Stats snapshots the injected-fault counters.
func (s *Schedule) Stats() Stats {
	return Stats{
		ShortReads:   s.shortReads.Load(),
		ShortWrites:  s.shortWrites.Load(),
		StallReads:   s.stallReads.Load(),
		StallWrites:  s.stallWrites.Load(),
		DropReads:    s.dropReads.Load(),
		DropWrites:   s.dropWrites.Load(),
		AcceptErrors: s.acceptErrors.Load(),
	}
}

// mix64 is SplitMix64's finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// roll derives the operation's hash: a pure function of the schedule seed
// and the operation key, independent of call order.
func (s *Schedule) roll(conn int64, op Op, index int64) uint64 {
	x := mix64(s.cfg.Seed ^ 0x9e3779b97f4a7c15)
	x = mix64(x ^ uint64(conn)*0xd1342543de82ef95)
	x = mix64(x ^ uint64(op)*0xaf251af3b0f025b5)
	x = mix64(x ^ uint64(index)*0x2545f4914f6cdd1d)
	return x
}

// Decide returns the fault decision for the index-th operation of kind op
// on connection conn (accept decisions use the listener's accept index
// and conn -1). Decide is pure: it never mutates the schedule, so tests
// can replay it to precompute the exact fault sequence.
func (s *Schedule) Decide(conn int64, op Op, index int64) Decision {
	r := s.roll(conn, op, index)
	die := int(r % 1000)
	var short, stall, drop int
	switch op {
	case OpRead:
		short, stall, drop = s.cfg.ShortRead, s.cfg.StallRead, s.cfg.DropRead
	case OpWrite:
		short, stall, drop = s.cfg.ShortWrite, s.cfg.StallWrite, s.cfg.DropWrite
	case OpAccept:
		if die < s.cfg.AcceptError {
			return Decision{Action: Reject}
		}
		return Decision{Action: Pass}
	}
	switch {
	case die < short:
		return Decision{Action: Short, N: 1 + int((r>>32)%uint64(s.cfg.MaxShort))}
	case die < short+stall:
		return Decision{Action: Stall}
	case die < short+stall+drop:
		return Decision{Action: Drop}
	}
	return Decision{Action: Pass}
}

// count records an injected fault in the stats.
func (s *Schedule) count(op Op, a Action) {
	switch {
	case op == OpRead && a == Short:
		s.shortReads.Add(1)
	case op == OpRead && a == Stall:
		s.stallReads.Add(1)
	case op == OpRead && a == Drop:
		s.dropReads.Add(1)
	case op == OpWrite && a == Short:
		s.shortWrites.Add(1)
	case op == OpWrite && a == Stall:
		s.stallWrites.Add(1)
	case op == OpWrite && a == Drop:
		s.dropWrites.Add(1)
	case op == OpAccept && a == Reject:
		s.acceptErrors.Add(1)
	}
}

// Listener wraps a net.Listener with accept-error injection and hands out
// fault-injecting conns numbered in accept order.
type Listener struct {
	net.Listener
	sched   *Schedule
	accepts atomic.Int64
	conns   atomic.Int64
}

// Wrap returns a fault-injecting listener over ln.
func Wrap(ln net.Listener, sched *Schedule) *Listener {
	return &Listener{Listener: ln, sched: sched}
}

// Accept implements net.Listener. Injected accept errors are transient
// (net.Error with Temporary() true) and do not consume the pending
// connection.
func (l *Listener) Accept() (net.Conn, error) {
	idx := l.accepts.Add(1) - 1
	if d := l.sched.Decide(-1, OpAccept, idx); d.Action == Reject {
		l.sched.count(OpAccept, Reject)
		return nil, acceptErr{}
	}
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return WrapConn(c, l.sched, l.conns.Add(1)-1), nil
}

// Conn wraps a net.Conn with fault injection. Reads and writes are
// numbered per direction; each consults the schedule before touching the
// underlying connection.
type Conn struct {
	conn  net.Conn
	sched *Schedule
	id    int64

	reads, writes atomic.Int64

	mu            sync.Mutex
	readDeadline  time.Time
	writeDeadline time.Time

	closed    chan struct{}
	closeOnce sync.Once
}

// WrapConn returns a fault-injecting wrapper around c, identified as
// connection id in the schedule.
func WrapConn(c net.Conn, sched *Schedule, id int64) *Conn {
	return &Conn{conn: c, sched: sched, id: id, closed: make(chan struct{})}
}

// stall blocks until the deadline passes (os.ErrDeadlineExceeded) or the
// conn closes (net.ErrClosed). The wait uses a timer armed from the
// deadline the peer configured — never a wall-clock read — so the
// schedule itself stays deterministic.
func (c *Conn) stall(deadline time.Time) error {
	if deadline.IsZero() {
		<-c.closed
		return net.ErrClosed
	}
	t := time.NewTimer(time.Until(deadline))
	defer t.Stop()
	select {
	case <-t.C:
		return os.ErrDeadlineExceeded
	case <-c.closed:
		return net.ErrClosed
	}
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	idx := c.reads.Add(1) - 1
	d := c.sched.Decide(c.id, OpRead, idx)
	switch d.Action {
	case Short:
		if len(p) > d.N {
			p = p[:d.N]
		}
		c.sched.count(OpRead, Short)
		return c.conn.Read(p)
	case Stall:
		c.sched.count(OpRead, Stall)
		c.mu.Lock()
		deadline := c.readDeadline
		c.mu.Unlock()
		return 0, c.stall(deadline)
	case Drop:
		c.sched.count(OpRead, Drop)
		_ = c.Close() // the injected fault is the close itself
		return 0, ErrInjected
	}
	return c.conn.Read(p)
}

// Write implements net.Conn.
func (c *Conn) Write(p []byte) (int, error) {
	idx := c.writes.Add(1) - 1
	d := c.sched.Decide(c.id, OpWrite, idx)
	switch d.Action {
	case Short:
		c.sched.count(OpWrite, Short)
		n := d.N
		if n > len(p) {
			n = len(p)
		}
		if n > 0 {
			var err error
			n, err = c.conn.Write(p[:n])
			if err != nil {
				return n, err
			}
		}
		return n, ErrInjected
	case Stall:
		c.sched.count(OpWrite, Stall)
		c.mu.Lock()
		deadline := c.writeDeadline
		c.mu.Unlock()
		return 0, c.stall(deadline)
	case Drop:
		c.sched.count(OpWrite, Drop)
		_ = c.Close() // the injected fault is the close itself
		return 0, ErrInjected
	}
	return c.conn.Write(p)
}

// Close implements net.Conn; it also releases any in-flight stalls.
func (c *Conn) Close() error {
	var err error
	c.closeOnce.Do(func() {
		close(c.closed)
		err = c.conn.Close()
	})
	return err
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.conn.LocalAddr() }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.conn.RemoteAddr() }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline, c.writeDeadline = t, t
	c.mu.Unlock()
	return c.conn.SetDeadline(t)
}

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return c.conn.SetReadDeadline(t)
}

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.writeDeadline = t
	c.mu.Unlock()
	return c.conn.SetWriteDeadline(t)
}
