package faultnet

import (
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"
)

// scheduleFor returns a schedule whose very first decision for (conn 0,
// op, index 0) is the wanted action, found by scanning seeds. Scanning is
// deterministic, so tests stay reproducible.
func scheduleFor(t *testing.T, cfg Config, op Op, want Action) *Schedule {
	t.Helper()
	for seed := uint64(0); seed < 10000; seed++ {
		cfg.Seed = seed
		s := NewSchedule(cfg)
		if s.Decide(0, op, 0).Action == want {
			return s
		}
	}
	t.Fatalf("no seed in range produces %v for op %v", want, op)
	return nil
}

func TestDecideDeterministicAndPure(t *testing.T) {
	cfg := Config{Seed: 42, ShortRead: 100, StallRead: 100, DropRead: 100, ShortWrite: 150, DropWrite: 150}
	a, b := NewSchedule(cfg), NewSchedule(cfg)
	for conn := int64(0); conn < 4; conn++ {
		for _, op := range []Op{OpRead, OpWrite, OpAccept} {
			for idx := int64(0); idx < 200; idx++ {
				d1, d2 := a.Decide(conn, op, idx), b.Decide(conn, op, idx)
				if d1 != d2 {
					t.Fatalf("conn %d op %v idx %d: %v != %v", conn, op, idx, d1, d2)
				}
			}
		}
	}
	// Decide mutates nothing: stats stay zero without injection.
	if got := a.Stats(); got != (Stats{}) {
		t.Errorf("Decide changed stats: %+v", got)
	}
}

func TestDecideMixesActions(t *testing.T) {
	s := NewSchedule(Config{Seed: 7, ShortRead: 200, StallRead: 200, DropRead: 200})
	seen := map[Action]int{}
	for idx := int64(0); idx < 1000; idx++ {
		seen[s.Decide(0, OpRead, idx).Action]++
	}
	for _, a := range []Action{Pass, Short, Stall, Drop} {
		if seen[a] == 0 {
			t.Errorf("action %v never decided in 1000 ops (%v)", a, seen)
		}
	}
}

// pipeConn returns a wrapped client-side pipe end plus the raw server end.
func pipeConn(s *Schedule) (*Conn, net.Conn) {
	a, b := net.Pipe()
	return WrapConn(a, s, 0), b
}

func TestShortReadDeliversPrefix(t *testing.T) {
	s := scheduleFor(t, Config{ShortRead: 1000, MaxShort: 2}, OpRead, Short)
	c, peer := pipeConn(s)
	defer c.Close()
	defer peer.Close()
	go func() {
		_, _ = peer.Write([]byte("abcdefgh"))
	}()
	buf := make([]byte, 8)
	n, err := c.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || n > 2 {
		t.Errorf("short read returned %d bytes, want 1..2", n)
	}
	if s.Stats().ShortReads != 1 {
		t.Errorf("ShortReads = %d, want 1", s.Stats().ShortReads)
	}
}

func TestShortWriteDesyncsStream(t *testing.T) {
	s := scheduleFor(t, Config{ShortWrite: 1000, MaxShort: 3}, OpWrite, Short)
	c, peer := pipeConn(s)
	defer c.Close()
	defer peer.Close()
	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 16)
		n, _ := peer.Read(buf)
		got <- buf[:n]
	}()
	n, err := c.Write([]byte("abcdefgh"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("short write err = %v, want ErrInjected", err)
	}
	if n == 0 || n > 3 {
		t.Errorf("short write wrote %d bytes, want 1..3", n)
	}
	if delivered := <-got; len(delivered) != n {
		t.Errorf("peer saw %d bytes, writer reported %d", len(delivered), n)
	}
	if s.Stats().ShortWrites != 1 {
		t.Errorf("ShortWrites = %d, want 1", s.Stats().ShortWrites)
	}
}

func TestStallRunsIntoDeadline(t *testing.T) {
	s := scheduleFor(t, Config{StallRead: 1000}, OpRead, Stall)
	c, peer := pipeConn(s)
	defer c.Close()
	defer peer.Close()
	if err := c.SetReadDeadline(time.Now().Add(30 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	_, err := c.Read(make([]byte, 4))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("stalled read err = %v, want os.ErrDeadlineExceeded", err)
	}
	if s.Stats().StallReads != 1 {
		t.Errorf("StallReads = %d, want 1", s.Stats().StallReads)
	}
}

func TestStallWithoutDeadlineUnblocksOnClose(t *testing.T) {
	s := scheduleFor(t, Config{StallRead: 1000}, OpRead, Stall)
	c, peer := pipeConn(s)
	defer peer.Close()
	done := make(chan error, 1)
	go func() {
		_, err := c.Read(make([]byte, 4))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, net.ErrClosed) {
			t.Errorf("stalled read err = %v, want net.ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stalled read never unblocked after Close")
	}
}

func TestDropClosesConn(t *testing.T) {
	s := scheduleFor(t, Config{DropRead: 1000}, OpRead, Drop)
	c, peer := pipeConn(s)
	defer peer.Close()
	if _, err := c.Read(make([]byte, 4)); !errors.Is(err, ErrInjected) {
		t.Fatalf("dropped read err = %v, want ErrInjected", err)
	}
	// The peer must observe the close (a read on a pipe whose remote end
	// closed returns immediately).
	if _, err := peer.Read(make([]byte, 4)); !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrClosedPipe) {
		t.Errorf("peer read after drop = %v, want EOF/closed", err)
	}
	if s.Stats().DropReads != 1 {
		t.Errorf("DropReads = %d, want 1", s.Stats().DropReads)
	}
}

func TestPassThroughRoundTrip(t *testing.T) {
	s := NewSchedule(Config{}) // zero rates: everything passes
	a, b := net.Pipe()
	ca, cb := WrapConn(a, s, 0), WrapConn(b, s, 1)
	defer ca.Close()
	defer cb.Close()
	go func() {
		_, _ = ca.Write([]byte("hello"))
	}()
	buf := make([]byte, 5)
	if _, err := io.ReadFull(cb, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Errorf("round trip got %q", buf)
	}
	if got := s.Stats(); got != (Stats{}) {
		t.Errorf("pass-through injected faults: %+v", got)
	}
}

func TestListenerInjectsTransientAcceptErrors(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := scheduleFor(t, Config{AcceptError: 1000}, OpAccept, Reject)
	s.cfg.AcceptError = 500 // past the forced first reject, mix errors and passes
	ln := Wrap(raw, s)
	defer ln.Close()

	go func() {
		c, err := net.Dial("tcp", raw.Addr().String())
		if err == nil {
			defer c.Close()
			_, _ = c.Write([]byte("x"))
		}
	}()

	sawErr := false
	for i := 0; i < 50; i++ {
		c, err := ln.Accept()
		if err != nil {
			var ne net.Error
			if !errors.As(err, &ne) || !ne.Temporary() { //lint:ignore SA1019 transientness is the property under test
				t.Fatalf("injected accept error not transient: %v", err)
			}
			sawErr = true
			continue
		}
		// The queued connection survived the rejected accepts.
		buf := make([]byte, 1)
		if err := c.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
			t.Fatal(err)
		}
		if _, err := io.ReadFull(c, buf); err != nil {
			t.Fatalf("accepted conn read: %v", err)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		break
	}
	if !sawErr {
		t.Error("no accept error injected at 50%+ rate")
	}
	if s.Stats().AcceptErrors == 0 {
		t.Error("AcceptErrors not counted")
	}
}

func TestStatsMatchReplayedSchedule(t *testing.T) {
	// Drive a deterministic op sequence through a conn and check Stats
	// equals a pure replay of Decide over the same keys.
	cfg := Config{Seed: 99, ShortWrite: 300, DropWrite: 200, MaxShort: 4}
	s := NewSchedule(cfg)
	a, b := net.Pipe()
	defer b.Close()
	c := WrapConn(a, s, 0)
	go func() {
		_, _ = io.Copy(io.Discard, b)
	}()
	const ops = 40
	for i := 0; i < ops; i++ {
		// Keep writing through injected errors: the schedule consults
		// (conn, op, index) regardless, so every op has a decision.
		_, _ = c.Write([]byte("payload"))
	}
	// Replay the schedule over the same keys with pure Decide calls.
	replay := NewSchedule(cfg)
	var want Stats
	for i := int64(0); i < ops; i++ {
		switch replay.Decide(0, OpWrite, i).Action {
		case Short:
			want.ShortWrites++
		case Drop:
			want.DropWrites++
		}
	}
	if got := s.Stats(); got != want {
		t.Errorf("stats %+v != replayed schedule %+v", got, want)
	}
}
