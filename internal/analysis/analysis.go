// Package analysis characterizes request traces the way CDN caching
// papers do in their workload tables: popularity skew, size distribution,
// reuse behaviour, and working-set footprint. The report drives workload
// validation (does a synthetic trace look like CDN traffic?) and shows up
// in cmd/traceinfo.
package analysis

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"lfo/internal/trace"
)

// Report summarizes a trace.
type Report struct {
	Requests      int
	UniqueObjects int
	TotalBytes    int64
	UniqueBytes   int64

	// Size distribution over distinct objects (bytes).
	SizeP50, SizeP90, SizeP99, SizeMax int64
	MeanObjectSize                     float64

	// Popularity.
	OneHitWonderShare float64 // fraction of objects requested exactly once
	TopPct1Share      float64 // share of requests to the hottest 1% of objects
	ZipfAlpha         float64 // least-squares fit on the log rank-frequency curve
	MaxFrequency      int

	// Reuse behaviour.
	ReuseShare  float64 // fraction of requests that are reuses
	MedianReuse int64   // median request-count distance between reuses
}

// Analyze scans the trace and builds a report.
func Analyze(tr *trace.Trace) *Report {
	r := &Report{Requests: tr.Len(), TotalBytes: 0}
	if tr.Len() == 0 {
		return r
	}
	counts := make(map[trace.ObjectID]int, 1024)
	sizes := make(map[trace.ObjectID]int64, 1024)
	lastSeen := make(map[trace.ObjectID]int, 1024)
	var reuseDists []int64
	for i, req := range tr.Requests {
		r.TotalBytes += req.Size
		counts[req.ID]++
		sizes[req.ID] = req.Size
		if p, ok := lastSeen[req.ID]; ok {
			reuseDists = append(reuseDists, int64(i-p))
		}
		lastSeen[req.ID] = i
	}
	r.UniqueObjects = len(counts)

	// Size percentiles over distinct objects.
	sz := make([]int64, 0, len(sizes))
	for id, s := range sizes {
		sz = append(sz, s)
		r.UniqueBytes += s
		_ = id
	}
	sort.Slice(sz, func(a, b int) bool { return sz[a] < sz[b] })
	r.SizeP50 = percentile(sz, 0.50)
	r.SizeP90 = percentile(sz, 0.90)
	r.SizeP99 = percentile(sz, 0.99)
	r.SizeMax = sz[len(sz)-1]
	r.MeanObjectSize = float64(r.UniqueBytes) / float64(r.UniqueObjects)

	// Popularity.
	freqs := make([]int, 0, len(counts))
	oneHit := 0
	for _, c := range counts {
		freqs = append(freqs, c)
		if c == 1 {
			oneHit++
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	r.OneHitWonderShare = float64(oneHit) / float64(r.UniqueObjects)
	r.MaxFrequency = freqs[0]
	top := len(freqs) / 100
	if top < 1 {
		top = 1
	}
	topReqs := 0
	for _, f := range freqs[:top] {
		topReqs += f
	}
	r.TopPct1Share = float64(topReqs) / float64(r.Requests)
	r.ZipfAlpha = fitZipf(freqs)

	// Reuse.
	r.ReuseShare = float64(len(reuseDists)) / float64(r.Requests)
	if len(reuseDists) > 0 {
		sort.Slice(reuseDists, func(a, b int) bool { return reuseDists[a] < reuseDists[b] })
		r.MedianReuse = reuseDists[len(reuseDists)/2]
	}
	return r
}

// percentile returns the p-quantile of a sorted slice.
func percentile(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// fitZipf least-squares fits log(freq) = c − alpha·log(rank) over the
// descending frequency list, skipping the tail of singletons (they form a
// plateau that is not informative about the head's skew).
func fitZipf(descFreqs []int) float64 {
	var xs, ys []float64
	for i, f := range descFreqs {
		if f < 2 {
			break
		}
		xs = append(xs, math.Log(float64(i+1)))
		ys = append(ys, math.Log(float64(f)))
	}
	if len(xs) < 2 {
		return 0
	}
	// Ordinary least squares slope.
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	n := float64(len(xs))
	denom := n*sxx - sx*sx
	if denom == 0 {
		return 0
	}
	slope := (n*sxy - sx*sy) / denom
	return -slope
}

// String renders the report as the usual workload table.
func (r *Report) String() string {
	var b strings.Builder
	w := func(format string, args ...interface{}) { fmt.Fprintf(&b, format+"\n", args...) }
	w("requests:            %d", r.Requests)
	w("unique objects:      %d", r.UniqueObjects)
	w("total bytes:         %d", r.TotalBytes)
	w("working set bytes:   %d", r.UniqueBytes)
	w("object size p50/p90/p99/max: %d / %d / %d / %d", r.SizeP50, r.SizeP90, r.SizeP99, r.SizeMax)
	w("mean object size:    %.0f", r.MeanObjectSize)
	w("one-hit wonders:     %.1f%% of objects", 100*r.OneHitWonderShare)
	w("hottest 1%% objects:  %.1f%% of requests", 100*r.TopPct1Share)
	w("fitted Zipf alpha:   %.2f", r.ZipfAlpha)
	w("max object frequency: %d", r.MaxFrequency)
	w("reuse share:         %.1f%% of requests", 100*r.ReuseShare)
	w("median reuse distance: %d requests", r.MedianReuse)
	return b.String()
}
