package analysis

import (
	"math"
	"strings"
	"testing"

	"lfo/internal/gen"
	"lfo/internal/trace"
)

func TestAnalyzeHandTrace(t *testing.T) {
	// a(10) b(20) a(10) c(30) a(10): 5 requests, 3 objects.
	tr := &trace.Trace{Requests: []trace.Request{
		{Time: 0, ID: 1, Size: 10},
		{Time: 1, ID: 2, Size: 20},
		{Time: 2, ID: 1, Size: 10},
		{Time: 3, ID: 3, Size: 30},
		{Time: 4, ID: 1, Size: 10},
	}}
	r := Analyze(tr)
	if r.Requests != 5 || r.UniqueObjects != 3 {
		t.Fatalf("requests,objects = %d,%d", r.Requests, r.UniqueObjects)
	}
	if r.TotalBytes != 80 || r.UniqueBytes != 60 {
		t.Errorf("bytes = %d,%d, want 80,60", r.TotalBytes, r.UniqueBytes)
	}
	if r.SizeMax != 30 || r.SizeP50 != 20 {
		t.Errorf("size p50,max = %d,%d", r.SizeP50, r.SizeMax)
	}
	// b and c are one-hit wonders: 2/3.
	if math.Abs(r.OneHitWonderShare-2.0/3.0) > 1e-9 {
		t.Errorf("one-hit share = %g", r.OneHitWonderShare)
	}
	if r.MaxFrequency != 3 {
		t.Errorf("max freq = %d", r.MaxFrequency)
	}
	// Reuses: a@2 (dist 2), a@4 (dist 2) -> share 2/5, median 2.
	if math.Abs(r.ReuseShare-0.4) > 1e-9 || r.MedianReuse != 2 {
		t.Errorf("reuse = %g,%d", r.ReuseShare, r.MedianReuse)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	r := Analyze(&trace.Trace{})
	if r.Requests != 0 || r.UniqueObjects != 0 {
		t.Error("empty report not zero")
	}
}

// TestZipfAlphaRecovered: the fitted alpha on a generated Zipf trace must
// land near the generator's configured skew.
func TestZipfAlphaRecovered(t *testing.T) {
	for _, alpha := range []float64{0.7, 1.0} {
		cfg := gen.UnitMix(200000, 3, 1<<14, alpha)
		tr, err := gen.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r := Analyze(tr)
		if math.Abs(r.ZipfAlpha-alpha) > 0.2 {
			t.Errorf("alpha %.1f: fitted %.2f", alpha, r.ZipfAlpha)
		}
	}
}

func TestAnalyzeCDNMixShape(t *testing.T) {
	tr, err := gen.Generate(gen.CDNMix(50000, 7))
	if err != nil {
		t.Fatal(err)
	}
	r := Analyze(tr)
	// CDN traffic invariants the generator must reproduce (§1, [51]):
	// a long tail of one-hit wonders and a hot head.
	if r.OneHitWonderShare < 0.3 {
		t.Errorf("one-hit wonder share %.2f implausibly low for CDN traffic", r.OneHitWonderShare)
	}
	if r.TopPct1Share < 0.1 {
		t.Errorf("hottest 1%% carries only %.2f of requests", r.TopPct1Share)
	}
	if r.SizeMax < 10*r.SizeP50 {
		t.Errorf("size distribution not heavy-tailed: p50=%d max=%d", r.SizeP50, r.SizeMax)
	}
	s := r.String()
	for _, want := range []string{"requests:", "Zipf", "one-hit"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestPercentile(t *testing.T) {
	s := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(s, 0); got != 1 {
		t.Errorf("p0 = %d", got)
	}
	if got := percentile(s, 1); got != 10 {
		t.Errorf("p100 = %d", got)
	}
	if got := percentile(s, 0.5); got != 5 {
		t.Errorf("p50 = %d", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %d", got)
	}
}

func TestFitZipfDegenerate(t *testing.T) {
	if got := fitZipf([]int{1, 1, 1}); got != 0 {
		t.Errorf("all-singleton fit = %g, want 0", got)
	}
	if got := fitZipf(nil); got != 0 {
		t.Errorf("empty fit = %g", got)
	}
}
