// Package obs is the repository's observability layer: a standard-library
// metrics registry (atomic counters, gauges, and fixed-boundary latency
// histograms) plus the HTTP surfaces that expose it (obs/http.go).
//
// The package exists to make the paper's §3 robustness argument —
// "training tasks [must] not interfere with the request traffic" —
// verifiable at runtime: retrain stage durations, OPT solver mix, server
// request rates, and async window drops all record here and are served by
// cmd/predserve's -debug.addr listener or printed after a run via
// Registry.Snapshot.
//
// Design constraints, in priority order:
//
//  1. Zero cost when unused. Every handle type (Counter, Gauge,
//     Histogram) and the Registry itself are nil-receiver-safe no-ops, so
//     instrumented code paths need no conditional wiring: resolving a
//     metric from a nil *Registry yields a nil handle whose methods are a
//     single branch. Hot paths therefore carry instrumentation
//     unconditionally.
//  2. No interference with the request path when used: recording is an
//     atomic add — no locks, no allocation. The registry's mutex guards
//     only metric registration (a construction-time, cold-path event).
//  3. No interference with determinism: metrics observe the pipeline and
//     never feed back into it, and count-valued metrics are themselves
//     deterministic for a deterministic run (durations, of course, are
//     not). Snapshots render in sorted name order so output diffs
//     cleanly.
package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter discards all operations.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are a caller bug but are not checked on the
// hot path).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The zero value is ready to use;
// a nil *Gauge discards all operations.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-boundary histogram of int64 observations
// (conventionally nanoseconds for latency). Bucket i counts observations
// <= Bounds[i]; the final implicit bucket counts the rest. Observing is an
// atomic add per bucket plus count and sum; boundaries are fixed at
// registration, so snapshots from identical runs are structurally
// identical. A nil *Histogram discards all operations.
type Histogram struct {
	bounds  []int64
	buckets []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	count   atomic.Int64
	sum     atomic.Int64
}

// LatencyBounds is the default nanosecond boundary set for latency
// histograms: decades from 1µs to 10s.
var LatencyBounds = []int64{
	1_000,          // 1µs
	10_000,         // 10µs
	100_000,        // 100µs
	1_000_000,      // 1ms
	10_000_000,     // 10ms
	100_000_000,    // 100ms
	1_000_000_000,  // 1s
	10_000_000_000, // 10s
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile estimates the q-quantile (0 < q <= 1) of the observed values
// from the bucket counts, interpolating linearly within the bucket the
// quantile falls in. The estimate's resolution is the bucket width — use
// fine-grained bounds when quantiles matter (see lfoload). Returns 0 for
// an empty (or nil) histogram; a quantile landing in the overflow bucket
// reports the last finite bound.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := int64(0)
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			return lo + int64(frac*float64(hi-lo))
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// Scope is a named timer scope: it measures the wall-clock span between
// Start and Stop into a latency histogram (the name is the histogram's
// registry name). Scopes are plain values — starting and stopping one
// does not allocate — and a Scope started from a nil histogram skips the
// clock reads entirely, keeping disabled instrumentation free.
type Scope struct {
	h     *Histogram
	start time.Time
}

// Start opens a timer scope recording into h on Stop.
func Start(h *Histogram) Scope {
	if h == nil {
		return Scope{}
	}
	return Scope{h: h, start: time.Now()}
}

// Stop closes the scope, recording the elapsed nanoseconds.
func (s Scope) Stop() {
	if s.h != nil {
		s.h.Observe(time.Since(s.start).Nanoseconds())
	}
}

// Registry is a named collection of metrics. Metric resolution
// (get-or-create by name) takes a mutex and is meant for construction
// time; the returned handles are lock-free. A nil *Registry resolves
// every name to a nil handle, so components accept an optional registry
// without branching at record sites.
//
// A Registry value is a *view* onto a shared metric store: Prefixed
// returns a view that prepends a fixed prefix to every resolved name
// while writing into the same store, so a multi-shard process can hand
// each shard a distinguishable namespace (shard0_server_..., ...) and
// still snapshot everything at once.
type Registry struct {
	prefix string
	s      *regState
}

// regState is the store shared by a registry and all its prefixed views.
type regState struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{s: &regState{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}}
}

// Prefixed returns a view of the registry that prepends prefix to every
// metric name it resolves. The view shares the underlying store: metrics
// registered through it appear in the parent's Snapshot (and /metrics)
// under the prefixed name. Prefixes nest. A nil registry returns nil.
func (r *Registry) Prefixed(prefix string) *Registry {
	if r == nil {
		return nil
	}
	return &Registry{prefix: r.prefix + prefix, s: r.s}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	name = r.prefix + name
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	c := r.s.counters[name]
	if c == nil {
		c = &Counter{}
		r.s.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	name = r.prefix + name
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	g := r.s.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.s.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// boundaries on first use. Later calls return the existing histogram and
// ignore bounds; boundaries must be ascending.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	name = r.prefix + name
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	h := r.s.hists[name]
	if h == nil {
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("obs: histogram %q bounds not ascending at %d", name, i))
			}
		}
		h = &Histogram{
			bounds:  append([]int64(nil), bounds...),
			buckets: make([]atomic.Int64, len(bounds)+1),
		}
		r.s.hists[name] = h
	}
	return h
}

// Metric is one named scalar in a snapshot.
type Metric struct {
	Name  string
	Value int64
}

// HistogramSnapshot is one histogram's state in a snapshot.
type HistogramSnapshot struct {
	Name  string
	Count int64
	Sum   int64
	// Bounds are the bucket upper bounds; Counts has one extra entry for
	// the overflow bucket.
	Bounds []int64
	Counts []int64
}

// Snapshot is a point-in-time view of a registry, each slice sorted by
// name. Every value is read atomically, but the snapshot as a whole is
// not a consistent cut: metrics recorded while snapshotting may land in
// some values and not others.
type Snapshot struct {
	Counters   []Metric
	Gauges     []Metric
	Histograms []HistogramSnapshot
}

// Snapshot captures the registry's current state (zero Snapshot for nil).
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	var s Snapshot
	for name, c := range r.s.counters {
		s.Counters = append(s.Counters, Metric{name, c.Value()})
	}
	for name, g := range r.s.gauges {
		s.Gauges = append(s.Gauges, Metric{name, g.Value()})
	}
	for name, h := range r.s.hists {
		hs := HistogramSnapshot{
			Name:   name,
			Count:  h.Count(),
			Sum:    h.Sum(),
			Bounds: h.bounds,
			Counts: make([]int64, len(h.buckets)),
		}
		for i := range h.buckets {
			hs.Counts[i] = h.buckets[i].Load()
		}
		s.Histograms = append(s.Histograms, hs)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// flatten renders the snapshot as sorted (name, value) lines: scalars as
// themselves and each histogram as name_count, name_sum, and one
// name_le_<bound> line per bucket (name_le_inf for the overflow bucket).
func (s Snapshot) flatten() []Metric {
	out := make([]Metric, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms)*(3+8))
	out = append(out, s.Counters...)
	out = append(out, s.Gauges...)
	for _, h := range s.Histograms {
		out = append(out, Metric{h.Name + "_count", h.Count}, Metric{h.Name + "_sum", h.Sum})
		for i, c := range h.Counts {
			if i < len(h.Bounds) {
				out = append(out, Metric{fmt.Sprintf("%s_le_%d", h.Name, h.Bounds[i]), c})
			} else {
				out = append(out, Metric{h.Name + "_le_inf", c})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteText writes the snapshot as flat "name value" lines in sorted name
// order — the /metrics wire format.
func (s Snapshot) WriteText(w io.Writer) error {
	for _, m := range s.flatten() {
		if _, err := fmt.Fprintf(w, "%s %d\n", m.Name, m.Value); err != nil {
			return err
		}
	}
	return nil
}

// Vars renders the snapshot as a flat name→value map — the expvar
// (/debug/vars) representation. Values fit expvar's JSON encoding; int64
// values beyond float64's exact range are clamped by encoding/json's
// float conversion, which observability tolerates.
func (s Snapshot) Vars() map[string]int64 {
	out := make(map[string]int64)
	for _, m := range s.flatten() {
		out[m.Name] = m.Value
	}
	return out
}
