package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("reqs") != c {
		t.Error("counter not interned by name")
	}
	g := r.Gauge("conns")
	g.Set(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Errorf("gauge = %d, want 2", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", LatencyBounds)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry returned non-nil handles")
	}
	c.Inc()
	c.Add(2)
	g.Set(1)
	g.Add(1)
	h.Observe(5)
	sc := Start(h)
	sc.Stop()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil handles reported nonzero values")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Error("nil registry snapshot not empty")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns", []int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 100, 5000, 7000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 5+10+11+100+5000+7000 {
		t.Errorf("sum = %d", h.Sum())
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %d", len(snap.Histograms))
	}
	hs := snap.Histograms[0]
	want := []int64{2, 2, 0, 2} // <=10: {5,10}; <=100: {11,100}; <=1000: {}; overflow: {5000,7000}
	for i, w := range want {
		if hs.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, hs.Counts[i], w)
		}
	}
	// Re-registration returns the same histogram, ignoring bounds.
	if r.Histogram("lat_ns", []int64{1}) != h {
		t.Error("histogram not interned by name")
	}
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unsorted bounds accepted")
		}
	}()
	NewRegistry().Histogram("bad", []int64{10, 10})
}

func TestSnapshotDeterministicOrderAndText(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Counter("a_total").Add(1)
	r.Gauge("m_gauge").Set(7)
	r.Histogram("z_ns", []int64{10}).Observe(3)

	var buf strings.Builder
	if err := r.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a_total 1\n" +
		"b_total 2\n" +
		"m_gauge 7\n" +
		"z_ns_count 1\n" +
		"z_ns_le_10 1\n" +
		"z_ns_le_inf 0\n" +
		"z_ns_sum 3\n"
	if buf.String() != want {
		t.Errorf("text:\n%s\nwant:\n%s", buf.String(), want)
	}

	vars := r.Snapshot().Vars()
	if vars["a_total"] != 1 || vars["z_ns_sum"] != 3 {
		t.Errorf("vars map wrong: %v", vars)
	}
}

func TestScopeRecords(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("scope_ns", LatencyBounds)
	sc := Start(h)
	sc.Stop()
	if h.Count() != 1 {
		t.Errorf("scope recorded %d observations, want 1", h.Count())
	}
	if h.Sum() < 0 {
		t.Errorf("negative elapsed %d", h.Sum())
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", LatencyBounds)
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
}

// TestRecordingDoesNotAllocate is the zero-cost guarantee the request
// path depends on: counter/gauge/histogram recording — enabled or nil —
// must not allocate.
func TestRecordingDoesNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", LatencyBounds)
	var nilC *Counter
	var nilH *Histogram
	cases := []struct {
		name string
		f    func()
	}{
		{"counter", func() { c.Inc() }},
		{"gauge", func() { g.Set(1) }},
		{"histogram", func() { h.Observe(12345) }},
		{"scope", func() { Start(h).Stop() }},
		{"nil counter", func() { nilC.Inc() }},
		{"nil scope", func() { Start(nilH).Stop() }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(1000, tc.f); allocs != 0 {
			t.Errorf("%s: %.1f allocs/op, want 0", tc.name, allocs)
		}
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h", LatencyBounds)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkScope(b *testing.B) {
	h := NewRegistry().Histogram("h", LatencyBounds)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Start(h).Stop()
	}
}

// BenchmarkRequestObs is the per-request observability path a serving
// loop pays — a counter increment plus a latency scope — pinned to 0
// allocs/op by testdata/alloc_budgets.txt (scripts/check.sh).
func BenchmarkRequestObs(b *testing.B) {
	r := NewRegistry()
	reqs := r.Counter("requests")
	lat := r.Histogram("latency", LatencyBounds)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reqs.Inc()
		Start(lat).Stop()
	}
}

// TestPrefixedRegistry: a prefixed view writes into the shared store
// under prefixed names, the same name resolves to the same handle through
// the same view, and distinct prefixes keep distinct handles. Nil safety
// mirrors the base registry.
func TestPrefixedRegistry(t *testing.T) {
	r := NewRegistry()
	s0 := r.Prefixed("shard0_")
	s1 := r.Prefixed("shard1_")

	s0.Counter("server_requests_total").Add(3)
	s1.Counter("server_requests_total").Add(5)
	r.Counter("fleet_rows_total").Add(7)

	if got := r.Counter("shard0_server_requests_total").Value(); got != 3 {
		t.Errorf("shard0 counter via parent = %d, want 3", got)
	}
	if got := s1.Counter("server_requests_total").Value(); got != 5 {
		t.Errorf("shard1 counter = %d, want 5", got)
	}
	if s0.Counter("server_requests_total") == s1.Counter("server_requests_total") {
		t.Error("distinct prefixes resolved to the same counter handle")
	}
	// Nested prefixes compose.
	if r.Prefixed("a_").Prefixed("b_").Gauge("g") != r.Gauge("a_b_g") {
		t.Error("nested prefix did not compose")
	}
	// The parent snapshot sees every view's metrics.
	snap := r.Snapshot()
	want := map[string]int64{
		"shard0_server_requests_total": 3,
		"shard1_server_requests_total": 5,
		"fleet_rows_total":             7,
	}
	seen := make(map[string]int64)
	for _, m := range snap.Counters {
		seen[m.Name] = m.Value
	}
	for name, v := range want {
		if seen[name] != v {
			t.Errorf("snapshot %s = %d, want %d", name, seen[name], v)
		}
	}
	// Nil registry stays nil through Prefixed.
	var nilReg *Registry
	if nilReg.Prefixed("x_") != nil {
		t.Error("nil.Prefixed returned non-nil")
	}
	nilReg.Prefixed("x_").Counter("c").Inc() // must not panic
}

// TestHistogramQuantile: quantiles interpolate within the right bucket,
// empty histograms report 0, and overflow-bucket quantiles clamp to the
// last finite bound.
func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", []int64{10, 20, 40, 80})

	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %d, want 0", got)
	}
	// 100 observations uniformly in (0,10]: p50 lands mid-bucket.
	for i := 0; i < 100; i++ {
		h.Observe(5)
	}
	if got := h.Quantile(0.5); got != 5 {
		t.Errorf("p50 of single-bucket fill = %d, want 5 (midpoint)", got)
	}
	// Add 100 in (20,40]: p99 of 200 obs lands in the (20,40] bucket.
	for i := 0; i < 100; i++ {
		h.Observe(30)
	}
	p99 := h.Quantile(0.99)
	if p99 <= 20 || p99 > 40 {
		t.Errorf("p99 = %d, want in (20,40]", p99)
	}
	// Overflow observations clamp to the last finite bound.
	h2 := r.Histogram("q2", []int64{10, 20})
	h2.Observe(1000)
	if got := h2.Quantile(0.99); got != 20 {
		t.Errorf("overflow quantile = %d, want last bound 20", got)
	}
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Error("nil histogram quantile != 0")
	}
}
