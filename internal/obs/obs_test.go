package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("reqs") != c {
		t.Error("counter not interned by name")
	}
	g := r.Gauge("conns")
	g.Set(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Errorf("gauge = %d, want 2", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", LatencyBounds)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry returned non-nil handles")
	}
	c.Inc()
	c.Add(2)
	g.Set(1)
	g.Add(1)
	h.Observe(5)
	sc := Start(h)
	sc.Stop()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil handles reported nonzero values")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Error("nil registry snapshot not empty")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns", []int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 100, 5000, 7000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 5+10+11+100+5000+7000 {
		t.Errorf("sum = %d", h.Sum())
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %d", len(snap.Histograms))
	}
	hs := snap.Histograms[0]
	want := []int64{2, 2, 0, 2} // <=10: {5,10}; <=100: {11,100}; <=1000: {}; overflow: {5000,7000}
	for i, w := range want {
		if hs.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, hs.Counts[i], w)
		}
	}
	// Re-registration returns the same histogram, ignoring bounds.
	if r.Histogram("lat_ns", []int64{1}) != h {
		t.Error("histogram not interned by name")
	}
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unsorted bounds accepted")
		}
	}()
	NewRegistry().Histogram("bad", []int64{10, 10})
}

func TestSnapshotDeterministicOrderAndText(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Counter("a_total").Add(1)
	r.Gauge("m_gauge").Set(7)
	r.Histogram("z_ns", []int64{10}).Observe(3)

	var buf strings.Builder
	if err := r.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a_total 1\n" +
		"b_total 2\n" +
		"m_gauge 7\n" +
		"z_ns_count 1\n" +
		"z_ns_le_10 1\n" +
		"z_ns_le_inf 0\n" +
		"z_ns_sum 3\n"
	if buf.String() != want {
		t.Errorf("text:\n%s\nwant:\n%s", buf.String(), want)
	}

	vars := r.Snapshot().Vars()
	if vars["a_total"] != 1 || vars["z_ns_sum"] != 3 {
		t.Errorf("vars map wrong: %v", vars)
	}
}

func TestScopeRecords(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("scope_ns", LatencyBounds)
	sc := Start(h)
	sc.Stop()
	if h.Count() != 1 {
		t.Errorf("scope recorded %d observations, want 1", h.Count())
	}
	if h.Sum() < 0 {
		t.Errorf("negative elapsed %d", h.Sum())
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", LatencyBounds)
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
}

// TestRecordingDoesNotAllocate is the zero-cost guarantee the request
// path depends on: counter/gauge/histogram recording — enabled or nil —
// must not allocate.
func TestRecordingDoesNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", LatencyBounds)
	var nilC *Counter
	var nilH *Histogram
	cases := []struct {
		name string
		f    func()
	}{
		{"counter", func() { c.Inc() }},
		{"gauge", func() { g.Set(1) }},
		{"histogram", func() { h.Observe(12345) }},
		{"scope", func() { Start(h).Stop() }},
		{"nil counter", func() { nilC.Inc() }},
		{"nil scope", func() { Start(nilH).Stop() }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(1000, tc.f); allocs != 0 {
			t.Errorf("%s: %.1f allocs/op, want 0", tc.name, allocs)
		}
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h", LatencyBounds)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkScope(b *testing.B) {
	h := NewRegistry().Histogram("h", LatencyBounds)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Start(h).Stop()
	}
}

// BenchmarkRequestObs is the per-request observability path a serving
// loop pays — a counter increment plus a latency scope — pinned to 0
// allocs/op by testdata/alloc_budgets.txt (scripts/check.sh).
func BenchmarkRequestObs(b *testing.B) {
	r := NewRegistry()
	reqs := r.Counter("requests")
	lat := r.Histogram("latency", LatencyBounds)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reqs.Inc()
		Start(lat).Stop()
	}
}
