package obs

// HTTP surfaces for the metrics registry: a flat-text /metrics handler,
// an expvar (/debug/vars) bridge, and the net/http/pprof profiling
// endpoints, combined by DebugMux and served by ServeDebug — the engine
// behind cmd/predserve's -debug.addr flag.

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Handler returns an http.Handler rendering the registry's snapshot as
// flat "name value" text lines in sorted name order.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		// The snapshot is tiny; a mid-write client disconnect needs no
		// handling beyond abandoning the response.
		_ = r.Snapshot().WriteText(w)
	})
}

// expvarTargets maps published expvar names to swappable registry
// pointers: expvar forbids publishing a name twice, so re-publishing a
// name retargets the existing var instead.
var (
	expvarMu      sync.Mutex
	expvarTargets = map[string]*registryHolder{}
)

type registryHolder struct {
	mu  sync.Mutex
	reg *Registry
}

func (h *registryHolder) get() *Registry {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.reg
}

func (h *registryHolder) set(r *Registry) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.reg = r
}

// PublishExpvar exposes the registry's snapshot on /debug/vars under the
// given top-level name. Publishing an already-published name retargets it
// to the new registry (expvar itself forbids duplicate names).
func PublishExpvar(name string, r *Registry) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if h := expvarTargets[name]; h != nil {
		h.set(r)
		return
	}
	h := &registryHolder{reg: r}
	expvarTargets[name] = h
	expvar.Publish(name, expvar.Func(func() interface{} {
		return h.get().Snapshot().Vars()
	}))
}

// ExpvarName is the top-level /debug/vars key DebugMux publishes the
// registry under.
const ExpvarName = "lfo"

// DebugMux returns the debug HTTP mux: /metrics (flat text), /debug/vars
// (expvar, with the registry published under ExpvarName), and the
// /debug/pprof endpoints.
func DebugMux(r *Registry) *http.ServeMux {
	PublishExpvar(ExpvarName, r)
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug binds addr and serves DebugMux(r) in a background goroutine.
// It returns the bound address (so ":0" works) and a function that stops
// the listener and any in-flight handlers.
func ServeDebug(addr string, r *Registry) (net.Addr, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: DebugMux(r)}
	//lfolint:ignore goroutine-join the returned srv.Close is the join: Serve exits once the caller invokes it
	go func() {
		// Serve always returns a non-nil error on Close; nothing to do
		// with it here.
		_ = srv.Serve(ln)
	}()
	return ln.Addr(), srv.Close, nil
}
