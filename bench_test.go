package lfo

// Benchmark harness: one testing.B benchmark per figure of the paper's
// evaluation (regenerating its rows/series), plus ablation benches for the
// design choices called out in DESIGN.md and micro-benchmarks of the hot
// paths. Run with:
//
//	go test -bench=. -benchmem
//
// The figure benches print their tables once (on the first iteration) so
// `go test -bench` output doubles as the experiment record; lfobench runs
// the same harness at larger scales.

import (
	"fmt"
	"sync"
	"testing"

	"lfo/internal/experiments"
	"lfo/internal/features"
	"lfo/internal/gbdt"
	"lfo/internal/mrc"
	"lfo/internal/opt"
	"lfo/internal/policy"
	"lfo/internal/sim"
	"lfo/internal/trace"
)

// benchCfg is the shared experiment scale for benchmarks: large enough to
// be representative, small enough for -bench runs.
func benchCfg() experiments.Config {
	cfg := experiments.Quick()
	cfg.Requests = 30000
	cfg.Window = 10000
	return cfg
}

var printOnce sync.Map

// printTable prints a table once per benchmark name.
func printTable(b *testing.B, t fmt.Stringer) {
	if _, loaded := printOnce.LoadOrStore(b.Name(), true); !loaded {
		b.Logf("\n%s", t)
	}
}

func BenchmarkFig1RLBaselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := experiments.Fig1(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		printTable(b, experiments.Fig1Table(rs))
	}
}

func BenchmarkFig5aCutoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig5a(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		printTable(b, experiments.Fig5aTable(pts))
	}
}

func BenchmarkFig5bTrainingSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig5b(benchCfg(), []int{2500, 5000, 10000}, 2)
		if err != nil {
			b.Fatal(err)
		}
		printTable(b, experiments.Fig5bTable(pts))
	}
}

func BenchmarkFig5cSeeds(b *testing.B) {
	cfg := benchCfg()
	cfg.Window = 6000
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5c(cfg, 5)
		if err != nil {
			b.Fatal(err)
		}
		printTable(b, experiments.Fig5cTable(res))
	}
}

func BenchmarkFig6Policies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		printTable(b, experiments.Fig6Table(res, "bhr"))
	}
}

func BenchmarkFig7Throughput(b *testing.B) {
	cfg := benchCfg()
	cfg.Requests = 20000
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig7(cfg, []int{1, 2, 4})
		if err != nil {
			b.Fatal(err)
		}
		printTable(b, experiments.Fig7Table(pts))
	}
}

func BenchmarkFig8Importance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		entries, _, err := experiments.Fig8(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		printTable(b, experiments.Fig8Table(entries))
	}
}

func BenchmarkAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Accuracy(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if _, loaded := printOnce.LoadOrStore(b.Name(), true); !loaded {
			b.Logf("\n§3 accuracy: %.2f%% (paper: >93%%)", 100*res.Accuracy)
		}
	}
}

// Ablation benches (DESIGN.md, "Design choices called out for ablation").

func BenchmarkAblationRankedOPT(b *testing.B) {
	cfg := benchCfg()
	cfg.Requests = 10000
	for i := 0; i < b.N; i++ {
		pts, err := experiments.AblationRankFraction(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		printTable(b, experiments.AblationRankFractionTable(pts))
	}
}

func BenchmarkAblationFeatureVariants(b *testing.B) {
	cfg := benchCfg()
	cfg.Requests = 16000
	cfg.Window = 8000
	for i := 0; i < b.N; i++ {
		rs, err := experiments.AblationFeatureVariants(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printTable(b, experiments.AblationFeatureVariantsTable(rs))
	}
}

func BenchmarkAblationPolicyDesign(b *testing.B) {
	cfg := benchCfg()
	cfg.Requests = 20000
	cfg.Window = 5000
	for i := 0; i < b.N; i++ {
		rs, err := experiments.AblationPolicyDesign(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printTable(b, experiments.AblationPolicyDesignTable(rs))
	}
}

func BenchmarkAblationIterations(b *testing.B) {
	cfg := benchCfg()
	cfg.Requests = 12000
	cfg.Window = 6000
	for i := 0; i < b.N; i++ {
		rs, err := experiments.AblationIterations(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		printTable(b, experiments.AblationIterationsTable(rs))
	}
}

// Micro-benchmarks of the hot paths.

func benchTrace(b *testing.B, n int) *Trace {
	b.Helper()
	tr, err := GenerateCDNMix(n, 3)
	if err != nil {
		b.Fatal(err)
	}
	return tr.WithCosts(ObjectiveBHR)
}

func BenchmarkPolicyRequest(b *testing.B) {
	tr := benchTrace(b, 50000)
	for _, name := range policy.Names() {
		b.Run(name, func(b *testing.B) {
			p, err := policy.New(name, 32<<20, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Request(tr.Requests[i%tr.Len()])
			}
		})
	}
}

func BenchmarkGBDTPredict(b *testing.B) {
	tr := benchTrace(b, 12000)
	model, err := TrainWindowModel(tr, CacheConfig{CacheSize: 16 << 20, WindowSize: tr.Len()})
	if err != nil {
		b.Fatal(err)
	}
	row := make([]float64, features.Dim)
	row[features.FeatSize] = 32 << 10
	row[features.FeatFree] = 1 << 20
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Predict(row)
	}
}

func BenchmarkGBDTTrain(b *testing.B) {
	tr := benchTrace(b, 10000)
	ds := gbdt.NewDataset(features.Dim)
	tracker := features.NewTracker(0)
	buf := make([]float64, features.Dim)
	res, err := opt.Compute(tr, opt.Config{CacheSize: 16 << 20})
	if err != nil {
		b.Fatal(err)
	}
	for i, r := range tr.Requests {
		tracker.Features(r, 1<<20, buf)
		tracker.Update(r)
		label := 0.0
		if res.Admit[i] {
			label = 1
		}
		ds.Append(buf, label)
	}
	for _, v := range []struct {
		name    string
		workers int
	}{{"workers=1", 1}, {"workers=all", 0}} {
		b.Run(v.name, func(b *testing.B) {
			p := gbdt.DefaultParams()
			p.Workers = v.workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := gbdt.Train(ds, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOPTCompute measures the OPT labeler across algorithm and
// window-size regimes. flow-large is the segmented headline: ~130k
// intervals — 10x beyond the old 12k single-solve ceiling (42s
// unsegmented at 13.6k intervals on this hardware) — labeled mostly by
// exact per-segment flow in a fraction of that time. The reported
// flow-ivs/greedy-ivs metrics break down how many intervals each solver
// labeled.
func BenchmarkOPTCompute(b *testing.B) {
	small := benchTrace(b, 8000)
	large := benchTrace(b, 220000)
	cases := []struct {
		name string
		tr   *Trace
		cfg  opt.Config
	}{
		{"flow-small", small, opt.Config{CacheSize: 16 << 20, Algorithm: opt.AlgoFlow}},
		{"flow-large", large, opt.Config{CacheSize: 64 << 20, Algorithm: opt.AlgoFlow}},
		{"greedy-small", small, opt.Config{CacheSize: 16 << 20, Algorithm: opt.AlgoGreedy}},
		{"greedy-large", large, opt.Config{CacheSize: 64 << 20, Algorithm: opt.AlgoGreedy}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var res *OPTResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = opt.Compute(c.tr, c.cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.FlowIntervals), "flow-ivs")
			b.ReportMetric(float64(res.GreedyIntervals), "greedy-ivs")
			b.ReportMetric(float64(res.Segments), "segments")
		})
	}
}

func BenchmarkOPTFlow(b *testing.B) {
	tr := benchTrace(b, 8000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.Compute(tr, opt.Config{CacheSize: 16 << 20, Algorithm: opt.AlgoFlow}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOPTGreedy(b *testing.B) {
	tr := benchTrace(b, 50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.Compute(tr, opt.Config{CacheSize: 32 << 20, Algorithm: opt.AlgoGreedy}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFeatureTracking(b *testing.B) {
	tr := benchTrace(b, 50000)
	b.Run("stream", func(b *testing.B) {
		tracker := features.NewTracker(1 << 20)
		buf := make([]float64, features.Dim)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := tr.Requests[i%tr.Len()]
			tracker.Features(r, 1<<20, buf)
			tracker.Update(r)
		}
	})
	// Window-matrix extraction, the sharded retrain-path variant.
	free := make([]int64, tr.Len())
	for i := range free {
		free[i] = 1 << 20
	}
	for _, v := range []struct {
		name    string
		workers int
	}{{"matrix/workers=1", 1}, {"matrix/workers=all", 0}} {
		b.Run(v.name, func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				features.NewTracker(0).BuildMatrix(tr.Requests, free, v.workers)
			}
		})
	}
}

func BenchmarkLFOCacheRequest(b *testing.B) {
	tr := benchTrace(b, 50000)
	cache, err := NewCache(CacheConfig{CacheSize: 32 << 20, WindowSize: 1 << 30}) // no retrain inside the loop
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache.Request(tr.Requests[i%tr.Len()])
	}
}

// BenchmarkLFORequestObs compares the request hot path with metrics off
// (nil registry) and on. Run with -benchmem: the instrumented variant must
// show 0 extra B/op and allocs/op over the baseline — recording is atomic
// adds only.
func BenchmarkLFORequestObs(b *testing.B) {
	tr := benchTrace(b, 50000)
	for _, v := range []struct {
		name string
		reg  *MetricsRegistry
	}{{"baseline", nil}, {"instrumented", NewMetricsRegistry()}} {
		b.Run(v.name, func(b *testing.B) {
			cache, err := NewCache(CacheConfig{CacheSize: 32 << 20, WindowSize: 1 << 30, Obs: v.reg}) // no retrain inside the loop
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cache.Request(tr.Requests[i%tr.Len()])
			}
		})
	}
}

func BenchmarkSimulatorRun(b *testing.B) {
	tr := benchTrace(b, 50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := policy.NewLRU(32 << 20)
		sim.Run(tr, p, sim.Options{})
	}
}

func BenchmarkTraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := GenerateCDNMix(50000, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceBinaryCodec(b *testing.B) {
	tr := benchTrace(b, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf writeCounter
		if err := trace.WriteBinary(&buf, tr); err != nil {
			b.Fatal(err)
		}
	}
}

type writeCounter struct{ n int64 }

func (w *writeCounter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

func BenchmarkTieredExtension(b *testing.B) {
	cfg := benchCfg()
	cfg.Requests = 20000
	for i := 0; i < b.N; i++ {
		rs, err := experiments.TieredExperiment(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printTable(b, experiments.TieredTable(rs))
	}
}

func BenchmarkMRCComputeLRU(b *testing.B) {
	tr := benchTrace(b, 50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mrc.ComputeLRU(tr)
	}
}

func BenchmarkMCFSolve(b *testing.B) {
	// A fresh FOO-shaped graph per iteration (Solve is single-shot).
	tr := benchTrace(b, 4000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.Compute(tr, opt.Config{CacheSize: 16 << 20, Algorithm: opt.AlgoFlow}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredictionServerRoundTrip(b *testing.B) {
	tr := benchTrace(b, 10000)
	model, err := TrainWindowModel(tr, CacheConfig{CacheSize: 16 << 20, WindowSize: tr.Len()})
	if err != nil {
		b.Fatal(err)
	}
	srv := NewPredictionServer(model, 0)
	srv.Logf = b.Logf
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := DialPrediction(addr.String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	// One batch of 64 rows per round trip.
	rows := make([]float64, 64*features.Dim)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Predict(rows); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictionServerSingleRow is the fleet baseline: one row per
// round trip over the classic synchronous client, the pattern a frontend
// uses without the batching router. Compare against
// BenchmarkRouterEnqueueFlush (internal/fleet) and the lfoload sync vs
// router modes for the pipelining win.
func BenchmarkPredictionServerSingleRow(b *testing.B) {
	tr := benchTrace(b, 10000)
	model, err := TrainWindowModel(tr, CacheConfig{CacheSize: 16 << 20, WindowSize: tr.Len()})
	if err != nil {
		b.Fatal(err)
	}
	srv := NewPredictionServer(model, 0)
	srv.Logf = b.Logf
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := DialPrediction(addr.String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	row := make([]float64, features.Dim)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Predict(row); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRobustnessScans(b *testing.B) {
	cfg := benchCfg()
	cfg.Requests = 20000
	cfg.Window = 5000
	for i := 0; i < b.N; i++ {
		rs, err := experiments.Robustness(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printTable(b, experiments.RobustnessTable(rs))
	}
}

func BenchmarkEvictionGrid(b *testing.B) {
	cfg := benchCfg()
	cfg.Requests = 12000
	cfg.Window = 4000
	cfg.CacheSize = 8 << 20
	for i := 0; i < b.N; i++ {
		rs, err := experiments.EvictionGrid(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printTable(b, experiments.EvictionGridTable(rs))
	}
}
